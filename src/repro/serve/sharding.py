"""Multi-process sharding of :class:`BatchExecutor` batches.

One :class:`BatchExecutor` pass runs B independent inputs through one
instruction stream; nothing couples the batch lanes.  So a batch of B
rows can be cut into N contiguous spans and executed by N worker
processes -- each running the unmodified vectorized/limb backend over its
span -- and the concatenated results are *bit-identical* to the
single-process pass.  This module provides that split:

* :func:`partition_batch` -- the deterministic span arithmetic (first
  ``batch % shards`` spans get the extra row; empty spans are dropped, so
  a batch smaller than the shard count simply uses fewer workers).
* :class:`ShardPool` -- N persistent worker processes connected by pipes.
  Programs are pickled to a worker once (keyed, cached worker-side);
  per-run traffic is shared-memory names plus a few integers.
* :class:`ShardedBatchExecutor` -- the ``write_region`` / ``run`` /
  ``read_region`` surface of :class:`BatchExecutor`, dispatching to a
  pool.  ``shards=1`` (with no external pool) runs inline in-process;
  otherwise region data travels as shared-memory int64 planes -- decomposed
  limb planes for wide values -- and every worker writes its row span of
  the final VDM into one shared ``(k, B, vdm_size)`` plane set, which the
  master then serves ``read_region`` calls from.

Equivalence contract (enforced by ``tests/test_sharding.py``): outputs
element-for-element equal, identical :class:`ExecutionStats` (one program
pass is one pass, however many shards ran it), identical ``dtype_path``
(the master pins every shard to the representation the *whole* batch
needs, via :meth:`BatchExecutor._widen_to`), and identical faults -- each
worker reports the dynamic instruction index at which it faulted, and the
master re-raises the fault that the single-process scan would have hit
first (lowest instruction index, then lowest shard, i.e. row-major).

Workers default to the ``fork`` start method where available: it is fast,
and it shares one shared-memory resource tracker between master and
workers so attach/unlink bookkeeping stays clean.  ``spawn`` works too
(the worker entry point is importable) but may log harmless
resource-tracker warnings at worker exit on Python < 3.13.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import traceback
import weakref
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.femu.semantics import (
    ExecutionStats,
    SimulationFault,
    resolve_vdm_size,
)
from repro.femu.vectorized import BatchExecutor
from repro.isa.program import Program, RegionSpec
from repro.modmath.limb import LIMB_BITS, compose, decompose, limbs_for_bits
from repro.modmath.vectorized import fits_int64

__all__ = [
    "ShardPool",
    "ShardedBatchExecutor",
    "SpatialExecutor",
    "SpatialRunResult",
    "partition_batch",
]


def partition_batch(batch: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` row spans of a batch over ``shards``.

    The first ``batch % shards`` spans carry one extra row; spans are never
    empty (``shards`` is clamped to ``batch``), so ``len(result) ==
    min(batch, shards)`` and the spans tile ``range(batch)`` in order.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, batch)
    base, extra = divmod(batch, shards)
    spans = []
    start = 0
    for i in range(shards):
        width = base + (1 if i < extra else 0)
        spans.append((start, start + width))
        start += width
    return spans


_FAULT_TYPES: dict[str, type[Exception]] = {
    "SimulationFault": SimulationFault,
    "IndexError": IndexError,
    "ValueError": ValueError,
    "OverflowError": OverflowError,
}


def _attach(name: str, untrack: bool) -> shared_memory.SharedMemory:
    """Attach to a master-owned block without claiming cleanup duty.

    Under ``fork`` the workers share the master's resource tracker (the
    pool starts it pre-fork), so the master's create/unlink bookkeeping is
    the single source of truth.  Under ``spawn`` each worker has a private
    tracker that would try to "clean up" the master's blocks at worker
    exit; ``untrack`` drops that registration.
    """
    shm = shared_memory.SharedMemory(name=name)
    if untrack:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - bookkeeping only
            pass
    return shm


def _write_planes(ex: BatchExecutor, region: RegionSpec, planes) -> None:
    """Place pre-decomposed caller planes into a VDM region.

    Equivalent to ``ex.write_region(region, rows)`` for rows the master
    has already validated and decomposed with the executor's exact
    representation (``_widen_to`` ran first): same state write, same
    canonicality-ledger invalidation -- without composing the planes back
    into Python bigints only to re-decompose them.
    """
    span = slice(region.base, region.base + region.length)
    if ex._limb_k is None:
        ex.vdm[:, span] = planes
    else:
        ex.vdm[:, :, span] = planes
    if ex._vdm_canon is not None:
        # Caller data is unknown; the first load of it pays the scan.
        ex._vdm_canon[span] = False


def _run_in_worker(programs: dict, msg: tuple, untrack: bool) -> tuple:
    """Execute one ("run", ...) message; returns the reply tuple."""
    (_tag, key, vdm_size, start, stop, limb_k, inputs, out_name, out_shape) = msg
    ex = BatchExecutor(programs[key], batch=stop - start, vdm_size=vdm_size)
    if limb_k is not None:
        ex._widen_to(limb_k)
    try:
        for region, shm_name, shape in inputs:
            shm = _attach(shm_name, untrack)
            try:
                arr = np.ndarray(shape, dtype=np.int64, buffer=shm.buf)
                planes = (
                    arr[start:stop] if arr.ndim == 2 else arr[:, start:stop]
                )
                _write_planes(ex, region, planes)
            finally:
                shm.close()
        stats = ex.run()
    except tuple(_FAULT_TYPES.values()) as exc:
        return (
            "fault",
            type(exc).__name__,
            str(exc),
            ex.stats.executed,
            ex.stats,
        )
    if (limb_k is None) != (ex._limb_k is None) or (
        limb_k is not None and ex._limb_k != limb_k
    ):
        return (
            "error",
            f"worker representation {ex.dtype_path} drifted from the "
            f"master's plan (limb_k={limb_k})",
        )
    out_shm = _attach(out_name, untrack)
    try:
        out = np.ndarray(out_shape, dtype=np.int64, buffer=out_shm.buf)
        if limb_k is None:
            out[start:stop] = ex.vdm
        else:
            out[:, start:stop] = ex.vdm
    finally:
        out_shm.close()
    return ("ok", stats, ex.dtype_path)


def _run_spatial_in_worker(programs: dict, msg: tuple, untrack: bool) -> tuple:
    """Execute one ("srun", ...) message: a spatial-plan step.

    Unlike ``_run_in_worker`` the batch axis is always 1 and the
    shared-memory planes hold the *whole* ``n``-element transform state;
    each read names a ``(region, global_start)`` slice of the input plane
    (an exchange step reads one remote slice -- that is the cross-worker
    traffic the :class:`~repro.perf.engine.CrossWorkerRing` models) and the
    single write drops the worker's output region at a global offset of
    the output plane.
    """
    (_tag, key, reads, write, limb_k, in_name, in_shape, out_name, out_shape) = msg
    ex = BatchExecutor(programs[key], batch=1)
    if limb_k is not None:
        ex._widen_to(limb_k)
    try:
        in_shm = _attach(in_name, untrack)
        try:
            arr = np.ndarray(in_shape, dtype=np.int64, buffer=in_shm.buf)
            for region, start in reads:
                span = slice(start, start + region.length)
                planes = arr[:, span] if arr.ndim == 2 else arr[:, :, span]
                _write_planes(ex, region, planes)
        finally:
            in_shm.close()
        stats = ex.run()
    except tuple(_FAULT_TYPES.values()) as exc:
        return (
            "fault",
            type(exc).__name__,
            str(exc),
            ex.stats.executed,
            ex.stats,
        )
    if (limb_k is None) != (ex._limb_k is None) or (
        limb_k is not None and ex._limb_k != limb_k
    ):
        return (
            "error",
            f"worker representation {ex.dtype_path} drifted from the "
            f"master's plan (limb_k={limb_k})",
        )
    region, dst = write
    out_shm = _attach(out_name, untrack)
    try:
        out = np.ndarray(out_shape, dtype=np.int64, buffer=out_shm.buf)
        src = slice(region.base, region.base + region.length)
        dst_span = slice(dst, dst + region.length)
        if limb_k is None:
            out[:, dst_span] = ex.vdm[:, src]
        else:
            out[:, :, dst_span] = ex.vdm[:, :, src]
    finally:
        out_shm.close()
    return ("ok", stats, ex.dtype_path)


def _prime_kem_keys_in_worker(msg: tuple, untrack: bool) -> tuple:
    """Execute one ("kemkeys", ...) message: prime decoded-key caches.

    The payload is one shared-memory block of int64 planes plus, per
    entry, the original cache key (key bytes + module rank) and the
    array's (offset, shape) within the block.  Priming copies the
    material out -- the master unlinks the block as soon as every worker
    has replied.
    """
    from repro.rlwe import kem_host

    (_tag, shm_name, entries) = msg
    primers = {"ek": kem_host.prime_ek, "rho": kem_host.prime_matrix}
    shm = _attach(shm_name, untrack)
    try:
        flat = np.ndarray(
            (shm.size // 8,), dtype=np.int64, buffer=shm.buf
        )
        for kind, key, k, offset, shape in entries:
            count = int(np.prod(shape))
            value = flat[offset:offset + count].reshape(shape).copy()
            primers[kind](key, k, value)
    finally:
        shm.close()
    return ("ok", len(entries))


def _kem_key_stats_in_worker() -> tuple:
    from repro.rlwe import kem_host

    return ("ok", kem_host.key_cache_stats())


def _shard_worker(conn, untrack_shm: bool = False) -> None:
    """Worker main loop: cache programs, execute run requests until close."""
    programs: dict[int, Program] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        tag = msg[0]
        if tag == "close":
            break
        if tag == "program":
            programs[msg[1]] = msg[2]
            continue
        try:
            if tag == "srun":
                reply = _run_spatial_in_worker(programs, msg, untrack_shm)
            elif tag == "kemkeys":
                reply = _prime_kem_keys_in_worker(msg, untrack_shm)
            elif tag == "kemstats":
                reply = _kem_key_stats_in_worker()
            else:
                reply = _run_in_worker(programs, msg, untrack_shm)
        except BaseException:  # keep the worker alive; master re-raises
            reply = ("error", traceback.format_exc())
        conn.send(reply)
    conn.close()


def _shutdown(procs: list, conns: list) -> None:
    """Finalizer: ask workers to exit, then make sure they did."""
    for conn in conns:
        try:
            conn.send(("close",))
        except (BrokenPipeError, OSError):
            pass
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for proc in procs:
        proc.join(timeout=2)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2)


class ShardPool:
    """N persistent FEMU worker processes, reusable across programs/runs.

    Construction forks the workers immediately (do it before starting
    helper threads); :meth:`close` -- or garbage collection, or interpreter
    exit -- shuts them down.  The pool is thread-safe: one dispatch holds
    the pipes end to end, so concurrent callers (e.g. two serving groups
    flushing at once) serialize rather than interleave.
    """

    def __init__(self, shards: int, start_method: str | None = None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if start_method is None and "fork" in mp.get_all_start_methods():
            start_method = "fork"
        ctx = mp.get_context(start_method)
        forked = ctx.get_start_method() == "fork"
        if forked:
            # Start the shared-memory resource tracker *before* forking so
            # every worker inherits it; one tracker then sees the master's
            # create/unlink pairs and the workers' attaches consistently.
            resource_tracker.ensure_running()
        self._procs = []
        self._conns = []
        for i in range(shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child, not forked),
                name=f"rpu-shard-{i}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)
        self._known: list[set[int]] = [set() for _ in range(shards)]
        self._programs: dict[tuple, tuple[int, Program]] = {}
        self._next_key = 0
        self._kem_digests: set[str] = set()
        self._lock = threading.Lock()
        self._finalizer = weakref.finalize(
            self, _shutdown, self._procs, self._conns
        )

    @property
    def shards(self) -> int:
        return len(self._procs)

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def _key_for(self, program: Program) -> int:
        """Stable key for a program; holds a reference so ids cannot alias.

        Plan-cache-compiled programs carry a content hash
        (``metadata["plan_key"]``, see :mod:`repro.compile.cache`) which
        is preferred over object identity: a plan evicted and recompiled
        master-side maps to the *same* worker key, so workers receive
        each plan's prebuilt image at most once per pool lifetime.
        """
        plan_key = program.metadata.get("plan_key")
        handle = ("plan", plan_key) if plan_key else ("id", id(program))
        entry = self._programs.get(handle)
        if entry is not None:
            return entry[0]
        key = self._next_key
        self._next_key += 1
        self._programs[handle] = (key, program)
        return key

    def dispatch(
        self, program: Program, jobs: list[tuple[int, tuple]]
    ) -> list[tuple]:
        """Send one run payload per ``(worker_index, payload)`` job.

        The program is pickled to each participating worker at most once
        (cached by key).  All sends complete before the first receive, so
        the workers execute concurrently; replies come back in job order.

        A send/recv failure mid-dispatch (a worker died) poisons the whole
        pool: surviving workers may hold queued replies that would pair
        with the *next* dispatch's jobs, so the pool closes itself rather
        than serve silently desynchronized results.
        """
        if self.closed:
            raise RuntimeError("ShardPool is closed")
        with self._lock:
            try:
                key = self._key_for(program)
                for idx, _payload in jobs:
                    if key not in self._known[idx]:
                        self._conns[idx].send(("program", key, program))
                        self._known[idx].add(key)
                for idx, payload in jobs:
                    self._conns[idx].send(("run", key) + payload)
                replies = []
                for idx, _payload in jobs:
                    try:
                        replies.append(self._conns[idx].recv())
                    except (EOFError, OSError) as exc:
                        raise RuntimeError(
                            f"shard worker {idx} died mid-dispatch"
                        ) from exc
                return replies
            except RuntimeError:
                self._finalizer()
                raise
            except OSError as exc:  # a worker's pipe broke mid-send
                self._finalizer()
                raise RuntimeError(
                    "shard pool lost a worker mid-dispatch"
                ) from exc

    def dispatch_programs(
        self, jobs: list[tuple[int, Program, tuple]]
    ) -> list[tuple]:
        """Heterogeneous dispatch: each job carries its *own* program.

        Spatial plans (:mod:`repro.compile.spatial`) run a different
        per-worker program within one segment, so this is :meth:`dispatch`
        generalized to ``(worker_index, program, payload)`` jobs.  Programs
        are still pickled at most once per worker (same key cache), all
        sends complete before the first receive, and the receive loop
        doubles as the inter-segment barrier: when it returns, every worker
        has retired its stage, so the next segment may read the plane the
        previous one wrote.
        """
        if self.closed:
            raise RuntimeError("ShardPool is closed")
        with self._lock:
            try:
                keys = []
                for idx, program, _payload in jobs:
                    key = self._key_for(program)
                    keys.append(key)
                    if key not in self._known[idx]:
                        self._conns[idx].send(("program", key, program))
                        self._known[idx].add(key)
                for key, (idx, _program, payload) in zip(keys, jobs):
                    self._conns[idx].send(("srun", key) + payload)
                replies = []
                for idx, _program, _payload in jobs:
                    try:
                        replies.append(self._conns[idx].recv())
                    except (EOFError, OSError) as exc:
                        raise RuntimeError(
                            f"shard worker {idx} died mid-dispatch"
                        ) from exc
                return replies
            except RuntimeError:
                self._finalizer()
                raise
            except OSError as exc:  # a worker's pipe broke mid-send
                self._finalizer()
                raise RuntimeError(
                    "shard pool lost a worker mid-dispatch"
                ) from exc

    def prime_kem_keys(
        self, entries: list[tuple[str, str, bytes, int, np.ndarray]]
    ) -> int:
        """Ship decoded KEM key material to every worker, at most once.

        ``entries`` rows are ``(digest, kind, key_bytes, k, array)`` with
        ``kind`` in {"ek", "rho"} (``t-hat`` block / expanded ``A-hat``
        matrix).  Digests already shipped over this pool's lifetime are
        skipped -- the same ship-at-most-once bookkeeping the program
        images use, keyed by content instead of object identity.  The
        arrays cross as one shared-memory int64 plane per dispatch;
        workers copy them into their :mod:`repro.rlwe.kem_host` caches,
        so their first handshake against the key is a hit instead of a
        re-derivation.  Returns the number of entries actually shipped.
        """
        if self.closed:
            raise RuntimeError("ShardPool is closed")
        with self._lock:
            fresh = [e for e in entries if e[0] not in self._kem_digests]
            if not fresh:
                return 0
            payload = []
            offset = 0
            for _digest, kind, key, k, arr in fresh:
                arr = np.ascontiguousarray(arr, dtype=np.int64)
                payload.append((kind, key, k, offset, arr.shape, arr))
                offset += arr.size
            shm = shared_memory.SharedMemory(
                create=True, size=max(8 * offset, 1)
            )
            try:
                flat = np.ndarray((offset,), dtype=np.int64, buffer=shm.buf)
                for _kind, _key, _k, start, _shape, arr in payload:
                    flat[start:start + arr.size] = arr.reshape(-1)
                wire = [
                    (kind, key, k, start, shape)
                    for kind, key, k, start, shape, _arr in payload
                ]
                try:
                    for conn in self._conns:
                        conn.send(("kemkeys", shm.name, wire))
                    for idx, conn in enumerate(self._conns):
                        reply = conn.recv()
                        if reply[0] != "ok":
                            raise RuntimeError(
                                f"shard worker {idx} failed to prime KEM "
                                f"keys:\n{reply[1]}"
                            )
                except RuntimeError:
                    self._finalizer()
                    raise
                except (EOFError, OSError) as exc:
                    self._finalizer()
                    raise RuntimeError(
                        "shard pool lost a worker while shipping KEM keys"
                    ) from exc
            finally:
                shm.close()
                shm.unlink()
            self._kem_digests.update(e[0] for e in fresh)
            return len(fresh)

    def kem_key_stats(self) -> list[dict[str, dict[str, int]]]:
        """Per-worker decoded-key cache counters, in worker order.

        Each row is one worker's
        :func:`repro.rlwe.kem_host.key_cache_stats` -- the sharded
        :class:`~repro.rlwe.kem_engine.KemEngine` embeds this in its
        reports so a deployment can see shipped keys landing
        (``primed``) instead of being re-derived (``misses``).
        """
        if self.closed:
            raise RuntimeError("ShardPool is closed")
        with self._lock:
            try:
                for conn in self._conns:
                    conn.send(("kemstats",))
                stats = []
                for idx, conn in enumerate(self._conns):
                    reply = conn.recv()
                    if reply[0] != "ok":
                        raise RuntimeError(
                            f"shard worker {idx} failed to report KEM key "
                            f"stats:\n{reply[1]}"
                        )
                    stats.append(reply[1])
                return stats
            except RuntimeError:
                self._finalizer()
                raise
            except (EOFError, OSError) as exc:
                self._finalizer()
                raise RuntimeError(
                    "shard pool lost a worker while collecting KEM stats"
                ) from exc

    def close(self) -> None:
        self._finalizer()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedBatchExecutor:
    """A :class:`BatchExecutor` whose batch is spread over worker processes.

    Same surface and same contract as the single-process executor::

        ex = ShardedBatchExecutor(program, batch=16, shards=4)
        ex.write_region(program.input_region, sixteen_rows)
        ex.run()
        outs = ex.read_region(program.output_region)   # 16 result rows
        ex.close()

    ``shards=1`` with no external ``pool`` runs inline (zero process
    overhead -- the plain :class:`BatchExecutor` path); any other
    configuration dispatches row spans to a :class:`ShardPool`, which can
    be shared across executors (the serving loop does) or owned by this
    instance (created on demand, closed by :meth:`close`).

    Unlike :class:`BatchExecutor`, construction does not materialize
    state; each :meth:`run` executes the staged inputs from scratch, so
    the object describes *a batch*, not a machine.  Outputs, stats,
    ``dtype_path`` and faults are bit-identical to the single-process
    executor for every shard count (see the module docstring).
    """

    def __init__(
        self,
        program: Program,
        batch: int = 1,
        shards: int | None = None,
        vdm_size: int | None = None,
        pool: ShardPool | None = None,
        start_method: str | None = None,
    ) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if shards is None:
            # Unspecified: use the whole pool when one is supplied
            # (that's what handing over a pool means), else run inline.
            shards = pool.shards if pool is not None else 1
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.program = program
        self.batch = batch
        self.vlen = program.vlen
        self.vdm_size = resolve_vdm_size(program, vdm_size)
        self.stats = ExecutionStats()
        self.requested_shards = shards
        self._staged: dict[RegionSpec, list[list[int]]] = {}
        self._inline: BatchExecutor | None = None
        self._out: np.ndarray | None = None
        self._out_k: int | None = None
        self._dtype_path: str | None = None
        self._owns_pool = False
        if pool is not None:
            shards = min(shards, pool.shards)
        self._spans = partition_batch(batch, shards)
        self._pool = pool
        self._start_method = start_method

    @property
    def shards(self) -> int:
        """Effective shard count (spans actually dispatched)."""
        return len(self._spans)

    # -- representation ----------------------------------------------------
    def _representation(self) -> int | None:
        """The limb count one single-process pass would settle on.

        Replicates :meth:`BatchExecutor._select_limbs` plus the data-driven
        widening of ``write_region`` over *all* staged rows, so every shard
        can be pinned to the same representation up front.
        """
        k0 = BatchExecutor._select_limbs(self.program)
        lo = hi = 0
        for rows in self._staged.values():
            for row in rows:
                if row:
                    lo = min(lo, min(row))
                    hi = max(hi, max(row))
        if k0 is None and fits_int64(lo, hi):
            return None
        bits = max(abs(lo).bit_length(), abs(hi).bit_length(), 1)
        return max(k0 or 0, limbs_for_bits(bits))

    @property
    def dtype_path(self) -> str:
        """Element representation, identical to the single-process choice."""
        if self._inline is not None:
            return self._inline.dtype_path
        if self._dtype_path is not None:
            return self._dtype_path
        k = self._representation()
        return "int64" if k is None else f"limb{k}x{LIMB_BITS}"

    @property
    def native_path(self) -> str:
        """Limb-kernel backend of the executed pass (see BatchExecutor).

        Shard workers inherit the process environment, so every shard
        resolves the same backend as the single-process executor; the
        per-shard stats replies carry the verdict back (and the
        shard-parity check would flag any drift).
        """
        if self._inline is not None:
            return self._inline.native_path
        return self.stats.native_path

    # -- region I/O --------------------------------------------------------
    def write_region(self, region: RegionSpec | None, rows) -> None:
        """Stage ``batch`` input rows for a VDM region (validated now,
        transferred at :meth:`run`)."""
        if region is None:
            raise ValueError("program has no such region")
        if len(rows) != self.batch:
            raise ValueError(
                f"expected {self.batch} input rows, got {len(rows)}"
            )
        for values in rows:
            if len(values) != region.length:
                raise ValueError(
                    f"region {region.name!r} holds {region.length} elements, "
                    f"got {len(values)}"
                )
        self._staged[region] = [list(values) for values in rows]

    def read_region(self, region: RegionSpec | None) -> list[list[int]]:
        """Read a VDM region after :meth:`run`; one Python-int row per lane."""
        if region is None:
            raise ValueError("program has no such region")
        if self._inline is not None:
            return self._inline.read_region(region)
        if self._out is None:
            raise RuntimeError("run() has not completed")
        span = slice(region.base, region.base + region.length)
        if self._out_k is None:
            return [list(map(int, row)) for row in self._out[:, span].tolist()]
        return compose(self._out[:, :, span]).tolist()

    # -- execution ---------------------------------------------------------
    def run(self) -> ExecutionStats:
        """Execute the staged batch; returns one pass's stats."""
        if len(self._spans) == 1 and self._pool is None and not self._owns_pool:
            return self._run_inline()
        if self._pool is None:
            self._pool = ShardPool(
                len(self._spans), start_method=self._start_method
            )
            self._owns_pool = True
        return self._run_pooled()

    def _run_inline(self) -> ExecutionStats:
        ex = BatchExecutor(
            self.program, batch=self.batch, vdm_size=self.vdm_size
        )
        self._inline = ex
        self.stats = ex.stats
        for region, rows in self._staged.items():
            ex.write_region(region, rows)
        return ex.run()

    def _run_pooled(self) -> ExecutionStats:
        self._inline = None
        self._out = None
        limb_k = self._representation()
        blocks: list[shared_memory.SharedMemory] = []
        try:
            inputs = []
            for region, rows in self._staged.items():
                data = (
                    np.array(rows, dtype=np.int64)
                    if limb_k is None
                    else decompose(rows, limb_k)
                )
                shm = shared_memory.SharedMemory(
                    create=True, size=max(data.nbytes, 1)
                )
                np.ndarray(data.shape, dtype=np.int64, buffer=shm.buf)[:] = data
                blocks.append(shm)
                inputs.append((region, shm.name, data.shape))
            out_shape = (
                (self.batch, self.vdm_size)
                if limb_k is None
                else (limb_k, self.batch, self.vdm_size)
            )
            out_size = 8 * int(np.prod(out_shape))
            out_shm = shared_memory.SharedMemory(
                create=True, size=max(out_size, 1)
            )
            blocks.append(out_shm)
            jobs = [
                (
                    i,
                    (
                        self.vdm_size,
                        start,
                        stop,
                        limb_k,
                        inputs,
                        out_shm.name,
                        out_shape,
                    ),
                )
                for i, (start, stop) in enumerate(self._spans)
            ]
            replies = self._pool.dispatch(self.program, jobs)
            self._collect(replies)
            out = np.ndarray(out_shape, dtype=np.int64, buffer=out_shm.buf)
            self._out = out.copy()
            self._out_k = limb_k
        finally:
            for shm in blocks:
                shm.close()
                shm.unlink()
        return self.stats

    def _collect(self, replies: list[tuple]) -> None:
        """Merge worker replies; re-raise the fault a single pass would hit.

        The single-process executor scans the whole batch at each
        instruction, so the first fault in *program order* wins, and within
        one instruction the lowest batch row (= lowest shard) wins.
        """
        faults = []
        oks = []
        for shard_idx, reply in enumerate(replies):
            tag = reply[0]
            if tag == "ok":
                oks.append(reply)
            elif tag == "fault":
                _tag, type_name, message, executed, stats = reply
                faults.append((executed, shard_idx, type_name, message, stats))
            else:
                raise RuntimeError(
                    f"shard worker {shard_idx} failed:\n{reply[1]}"
                )
        if faults:
            faults.sort(key=lambda f: (f[0], f[1]))
            _executed, _idx, type_name, message, stats = faults[0]
            self.stats = stats
            raise _FAULT_TYPES.get(type_name, SimulationFault)(message)
        stats0, path0 = oks[0][1], oks[0][2]
        for reply in oks[1:]:
            if reply[1] != stats0 or reply[2] != path0:
                raise RuntimeError(
                    "shard invariance violation: workers disagree on "
                    f"stats/dtype_path ({reply[1]} vs {stats0}, "
                    f"{reply[2]} vs {path0})"
                )
        self.stats = stats0
        self._dtype_path = path0

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the owned pool (shared pools are left running)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None
            self._owns_pool = False

    def __enter__(self) -> "ShardedBatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class SpatialRunResult:
    """One spatial-plan execution: output plus its accounting.

    ``stats`` is the field-wise *sum* over every per-worker program pass in
    every segment -- a spatial run genuinely executes S local streams plus
    the exchange butterflies, unlike batch sharding where all shards run
    the same single pass.  ``crossings[j]`` counts how many times
    coefficient ``j`` travelled over the cross-worker exchange planes
    (read remotely by a partner worker); the schedule guarantees exactly
    ``log2(S)`` per coefficient.
    """

    output: list[int]
    stats: ExecutionStats
    dtype_path: str
    crossings: tuple[int, ...] = field(repr=False, default=())


class SpatialExecutor:
    """Run a :class:`~repro.compile.spatial.SpatialPlan` to completion.

    With no pool the segments run inline, worker by worker, against a list
    of Python ints -- the bit-exact oracle the pooled path is tested
    against.  With a :class:`ShardPool` (needs at least ``plan.shards``
    workers) each segment is one :meth:`ShardPool.dispatch_programs`
    barrier: the transform state lives in two ping-pong full-``n``
    shared-memory plane sets, every worker reads its input slices (its own
    slice, plus one remote slice during exchange rounds) from the current
    plane and writes its output slice to the other, and the dispatch's
    receive loop is the barrier that makes the written plane safe to read.

    Both paths pin every step to one representation up front (the widest
    limb count any per-worker program or the input data demands), so
    ``dtype_path`` matches the equivalent single-program run.
    """

    def __init__(self, plan, pool: ShardPool | None = None) -> None:
        if pool is not None and pool.shards < plan.shards:
            raise ValueError(
                f"plan needs {plan.shards} workers, pool has {pool.shards}"
            )
        self.plan = plan
        self._pool = pool

    # -- representation ----------------------------------------------------
    def _representation(self, values: list[int]) -> int | None:
        """The limb count the whole plan is pinned to.

        The widest :meth:`BatchExecutor._select_limbs` choice over every
        per-worker program, widened further if the input data does not fit
        int64 -- so every step of every segment agrees on ``dtype_path``.
        """
        k0 = 0
        any_limb = False
        for program in self.plan.programs():
            k = BatchExecutor._select_limbs(program)
            if k is not None:
                any_limb = True
                k0 = max(k0, k)
        lo = min(values, default=0)
        hi = max(values, default=0)
        if not any_limb and fits_int64(lo, hi):
            return None
        bits = max(abs(lo).bit_length(), abs(hi).bit_length(), 1)
        return max(k0, limbs_for_bits(bits))

    def _count_crossings(self) -> tuple[int, ...]:
        """Per-coefficient exchange-plane crossings, from the schedule.

        A coefficient crosses when an exchange step reads it from a slice
        that is not the executing worker's own; the fuzz suite checks this
        equals ``plan.plane_crossings()`` and is ``log2(S)`` everywhere.
        """
        length = self.plan.slice_length
        counts = [0] * self.plan.n
        for seg in self.plan.exchange_segments():
            for step in seg.steps:
                own = step.worker * length
                for region, start in step.reads:
                    if start != own:
                        for j in range(start, start + region.length):
                            counts[j] += 1
        return tuple(counts)

    # -- execution ---------------------------------------------------------
    def run(self, values) -> SpatialRunResult:
        """Execute the plan over ``n`` input coefficients."""
        values = [int(v) for v in values]
        if len(values) != self.plan.n:
            raise ValueError(
                f"plan transforms {self.plan.n} coefficients, "
                f"got {len(values)}"
            )
        limb_k = self._representation(values)
        crossings = self._count_crossings()
        if self._pool is None:
            return self._run_inline(values, limb_k, crossings)
        return self._run_pooled(values, limb_k, crossings)

    def _run_inline(
        self, state: list[int], limb_k: int | None, crossings: tuple[int, ...]
    ) -> SpatialRunResult:
        total = ExecutionStats()
        path = "int64" if limb_k is None else f"limb{limb_k}x{LIMB_BITS}"
        for seg in self.plan.segments:
            new_state = list(state)
            faults: list[tuple[int, int, Exception]] = []
            for step in seg.steps:
                ex = BatchExecutor(step.program, batch=1)
                if limb_k is not None:
                    ex._widen_to(limb_k)
                try:
                    for region, start in step.reads:
                        ex.write_region(
                            region, [state[start:start + region.length]]
                        )
                    stats = ex.run()
                except tuple(_FAULT_TYPES.values()) as exc:
                    faults.append((ex.stats.executed, step.worker, exc))
                    continue
                total = total + stats
                path = ex.dtype_path
                region, dst = step.write
                new_state[dst:dst + region.length] = ex.read_region(region)[0]
            if faults:
                # Same tie-break as the pooled path: earliest dynamic
                # instruction index first, then lowest worker.
                faults.sort(key=lambda f: (f[0], f[1]))
                raise faults[0][2]
            state = new_state
        return SpatialRunResult(state, total, path, crossings)

    def _run_pooled(
        self, values: list[int], limb_k: int | None, crossings: tuple[int, ...]
    ) -> SpatialRunResult:
        plan = self.plan
        shape = (1, plan.n) if limb_k is None else (limb_k, 1, plan.n)
        data = (
            np.array([values], dtype=np.int64)
            if limb_k is None
            else decompose([values], limb_k)
        )
        blocks: list[shared_memory.SharedMemory] = []
        try:
            planes = []
            for _ in range(2):
                shm = shared_memory.SharedMemory(
                    create=True, size=max(data.nbytes, 1)
                )
                blocks.append(shm)
                planes.append(shm)
            np.ndarray(shape, dtype=np.int64, buffer=planes[0].buf)[:] = data
            total = ExecutionStats()
            path = "int64" if limb_k is None else f"limb{limb_k}x{LIMB_BITS}"
            cur = 0
            for seg in plan.segments:
                src, dst = planes[cur], planes[1 - cur]
                jobs = [
                    (
                        step.worker,
                        step.program,
                        (
                            step.reads,
                            step.write,
                            limb_k,
                            src.name,
                            shape,
                            dst.name,
                            shape,
                        ),
                    )
                    for step in seg.steps
                ]
                replies = self._pool.dispatch_programs(jobs)
                seg_stats, seg_path = self._collect_segment(seg, replies)
                total = total + seg_stats
                if seg_path is not None:
                    path = seg_path
                cur = 1 - cur
            out = np.ndarray(shape, dtype=np.int64, buffer=planes[cur].buf)
            if limb_k is None:
                output = [int(x) for x in out[0]]
            else:
                output = compose(out).tolist()[0]
        finally:
            for shm in blocks:
                shm.close()
                shm.unlink()
        return SpatialRunResult(output, total, path, crossings)

    @staticmethod
    def _collect_segment(seg, replies: list[tuple]):
        """Merge one segment's replies; re-raise the winning fault."""
        faults = []
        stats_sum = ExecutionStats()
        path = None
        for step, reply in zip(seg.steps, replies):
            tag = reply[0]
            if tag == "ok":
                stats_sum = stats_sum + reply[1]
                path = reply[2]
            elif tag == "fault":
                _tag, type_name, message, executed, _stats = reply
                faults.append((executed, step.worker, type_name, message))
            else:
                raise RuntimeError(
                    f"spatial worker {step.worker} failed:\n{reply[1]}"
                )
        if faults:
            faults.sort(key=lambda f: (f[0], f[1]))
            _executed, _worker, type_name, message = faults[0]
            raise _FAULT_TYPES.get(type_name, SimulationFault)(message)
        return stats_sum, path
