"""Sharded multi-process batch serving for the FEMU.

The batch axis of :class:`~repro.femu.vectorized.BatchExecutor` is
embarrassingly parallel: B independent requests flow through one
instruction stream, and nothing couples the lanes.  This package exploits
that in two layers:

* :mod:`repro.serve.sharding` -- :class:`ShardedBatchExecutor` partitions
  a batch across N worker processes (a persistent :class:`ShardPool`),
  each running the existing vectorized/limb backend over its slice of the
  batch, with shared-memory int64 planes carrying region data in and the
  merged VDM planes out.  Output rows, :class:`ExecutionStats` and faults
  are bit-identical to the single-process executor for every shard count.
  The same pool also runs **spatial** plans: :class:`SpatialExecutor`
  executes a :class:`~repro.compile.spatial.SpatialPlan` -- one oversized
  transform cut into per-worker coefficient slices with explicit exchange
  rounds over the shared-memory planes -- bit-identically to the
  single-program kernel (latency scaling, where batching scales
  throughput; requested per-request via ``NttRequest(spatial_shards=S)``).
* :mod:`repro.serve.loop` -- :class:`RpuServer`, an asyncio front-end
  that accepts NTT / polynomial-multiply / HE-multiply / HE-level /
  ML-KEM handshake requests
  (:mod:`repro.serve.requests`), coalesces compatible requests into
  batches under a latency budget, dispatches them to the shard pool, and
  returns per-request results with merged stats.

The sharded mode is threaded through the stack: ``Rpu.run(...,
shards=N)`` / ``Rpu.run_batch``, ``RpuPipeline(..., shards=N)`` and
``repro.eval.he_pipeline.run_functional_he_multiply(..., shards=N)`` all
route their functional execution through this package.  See
``docs/backends.md`` for the knob and ``docs/architecture.md`` for where
the layer sits.
"""

from repro.serve.loop import RpuServer, ServeConfig, ServerOverloaded
from repro.serve.requests import (
    DeadlineExceeded,
    HeLevelRequest,
    HeMultiplyRequest,
    KemRequest,
    NttRequest,
    PolymulRequest,
    RotateRequest,
    ServeResult,
    deadline_in,
    he_group_moduli,
)
from repro.serve.sharding import (
    ShardedBatchExecutor,
    ShardPool,
    SpatialExecutor,
    SpatialRunResult,
    partition_batch,
)

__all__ = [
    "DeadlineExceeded",
    "HeLevelRequest",
    "HeMultiplyRequest",
    "KemRequest",
    "NttRequest",
    "PolymulRequest",
    "RotateRequest",
    "RpuServer",
    "ServeConfig",
    "ServeResult",
    "ServerOverloaded",
    "ShardPool",
    "ShardedBatchExecutor",
    "SpatialExecutor",
    "SpatialRunResult",
    "deadline_in",
    "he_group_moduli",
    "partition_batch",
]
