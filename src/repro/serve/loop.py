"""Asyncio serving front-end: coalesce requests, dispatch to shards.

:class:`RpuServer` is the low-latency dispatch loop in front of the fast
compute core (the nanoPU framing from PAPERS.md): clients ``await`` ring
primitives; the server groups compatible requests -- same
:attr:`~repro.serve.requests.NttRequest.group_key` -- that arrive within
a small latency budget into one batch, runs the batch over the shard
pool, and resolves each client's future with its own slice of the result
plus merged :class:`~repro.femu.ExecutionStats`.

Coalescing policy: the first request of a group opens a window of
``batch_window_s`` seconds; the group flushes when the window closes or
when ``max_batch`` requests have gathered, whichever is first.  Each
flush is one :func:`~repro.serve.requests.execute_group` call, run in a
worker thread so the event loop keeps accepting requests while the FEMU
crunches.  The shard pool serializes concurrent flushes internally, and
is forked at :meth:`start` -- before any helper thread exists -- so the
``fork`` start method stays safe.

Overload and latency control:

* **Backpressure**: ``max_pending`` bounds the number of accepted but
  unresolved requests; past the bound :meth:`submit` rejects immediately
  with :exc:`ServerOverloaded` instead of queueing unboundedly.
* **Deadlines**: pass ``deadline_s`` to the typed conveniences (or an
  absolute monotonic ``deadline`` on the request).  A request whose
  deadline passes before its batch dispatches fails fast with
  :exc:`~repro.serve.requests.DeadlineExceeded` and does not occupy
  batch rows.

Usage::

    async with RpuServer(ServeConfig(shards=4)) as server:
        result = await server.polymul(a, b, q_bits=32)
        print(result.output, result.batched_with, result.stats.executed)
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.serve import requests as _requests
from repro.serve.requests import (
    DeadlineExceeded,
    HeLevelRequest,
    HeMultiplyRequest,
    KemRequest,
    NttRequest,
    PolymulRequest,
    Request,
    RotateRequest,
    ServeResult,
)
from repro.serve.sharding import ShardPool

__all__ = ["RpuServer", "ServeConfig", "ServerOverloaded"]


class ServerOverloaded(RuntimeError):
    """The bounded pending queue is full; the request was rejected."""


@dataclass(frozen=True)
class ServeConfig:
    """Serving-loop knobs.

    Attributes:
        shards: worker processes per dispatched batch; ``1`` executes
            inline in the dispatch thread (no pool, no IPC).
        max_batch: flush a group as soon as this many requests coalesced.
        batch_window_s: latency budget -- how long the first request of a
            group waits for company before the batch flushes.
        max_pending: bound on accepted-but-unresolved requests;
            ``None`` disables backpressure.
        fuse: serve polymul / HE-multiply groups with the cross-kernel
            fused program (one pass) instead of three passes.
        start_method: multiprocessing start method for the pool
            (``None`` picks ``fork`` where available).
    """

    shards: int = 1
    max_batch: int = 8
    batch_window_s: float = 0.002
    max_pending: int | None = None
    fuse: bool = True
    start_method: str | None = None


@dataclass
class _PendingGroup:
    requests: list[Request] = field(default_factory=list)
    futures: list[asyncio.Future] = field(default_factory=list)
    timer: asyncio.Task | None = None


class RpuServer:
    """Accepts ring-primitive requests and serves them in coalesced batches.

    Start with :meth:`start` (or ``async with``); submit via
    :meth:`submit` or the typed conveniences :meth:`ntt`,
    :meth:`polymul`, :meth:`he_multiply`.  Every awaited call returns a
    :class:`~repro.serve.requests.ServeResult`.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self._pool: ShardPool | None = None
        self._groups: dict[tuple, _PendingGroup] = {}
        self._flushes: set[asyncio.Task] = set()
        self._pending = 0
        self._rejected = 0
        self._started = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "RpuServer":
        """Fork the shard pool (before any helper threads exist)."""
        if self._started:
            return self
        if self.config.shards > 1:
            self._pool = ShardPool(
                self.config.shards, start_method=self.config.start_method
            )
        self._started = True
        return self

    async def aclose(self) -> None:
        """Flush nothing further; fail pending requests; stop the pool."""
        self._closed = True
        for group in self._groups.values():
            if group.timer is not None:
                group.timer.cancel()
            for fut in group.futures:
                if not fut.done():
                    fut.set_exception(RuntimeError("server closed"))
        self._groups.clear()
        if self._flushes:
            await asyncio.gather(*self._flushes, return_exceptions=True)
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    async def __aenter__(self) -> "RpuServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- observability -----------------------------------------------------
    @property
    def pending(self) -> int:
        """Accepted requests not yet resolved (the backpressure gauge)."""
        return self._pending

    @property
    def rejected(self) -> int:
        """Requests refused by backpressure since the server started."""
        return self._rejected

    # -- client surface ----------------------------------------------------
    async def submit(self, request: Request) -> ServeResult:
        """Enqueue one request; resolves when its batch has executed.

        Raises :exc:`ServerOverloaded` immediately when ``max_pending``
        requests are already in flight -- an explicit reject the client
        can back off on, rather than an unbounded queue.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        limit = self.config.max_pending
        if limit is not None and self._pending >= limit:
            self._rejected += 1
            raise ServerOverloaded(
                f"{self._pending} requests pending (bound {limit})"
            )
        if not self._started:
            await self.start()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending += 1
        future.add_done_callback(self._request_done)
        key = request.group_key
        group = self._groups.get(key)
        if group is None:
            group = _PendingGroup()
            self._groups[key] = group
            group.timer = asyncio.create_task(self._window(key))
        group.requests.append(request)
        group.futures.append(future)
        if len(group.requests) >= self.config.max_batch:
            self._flush(key)
        return await future

    def _request_done(self, _future: asyncio.Future) -> None:
        self._pending -= 1

    @staticmethod
    def _absolute_deadline(deadline_s: float | None) -> float | None:
        return None if deadline_s is None else time.monotonic() + deadline_s

    async def ntt(self, values, deadline_s: float | None = None, **kwargs):
        return await self.submit(
            NttRequest(
                values=tuple(values),
                deadline=self._absolute_deadline(deadline_s),
                **kwargs,
            )
        )

    async def polymul(self, a, b, deadline_s: float | None = None, **kwargs):
        return await self.submit(
            PolymulRequest(
                a=tuple(a),
                b=tuple(b),
                deadline=self._absolute_deadline(deadline_s),
                **kwargs,
            )
        )

    async def he_multiply(
        self, a_towers, b_towers, deadline_s: float | None = None, **kwargs
    ):
        return await self.submit(
            HeMultiplyRequest(
                a_towers=tuple(tuple(t) for t in a_towers),
                b_towers=tuple(tuple(t) for t in b_towers),
                deadline=self._absolute_deadline(deadline_s),
                **kwargs,
            )
        )

    async def he_level(
        self, x, y, material, deadline_s: float | None = None, **kwargs
    ):
        """One full CKKS level: ``x`` / ``y`` are (comp0, comp1) tower
        pairs, ``material`` a :class:`~repro.rlwe.engine.LevelKeyMaterial`;
        requests sharing a material coalesce into one engine batch."""
        return await self.submit(
            HeLevelRequest(
                x0_towers=tuple(tuple(t) for t in x[0]),
                x1_towers=tuple(tuple(t) for t in x[1]),
                y0_towers=tuple(tuple(t) for t in y[0]),
                y1_towers=tuple(tuple(t) for t in y[1]),
                material=material,
                deadline=self._absolute_deadline(deadline_s),
                **kwargs,
            )
        )

    async def rotate(
        self, ct, material, deadline_s: float | None = None, **kwargs
    ):
        """One CKKS Galois rotation: ``ct`` is a (comp0, comp1) tower
        pair, ``material`` a
        :class:`~repro.rlwe.engine.RotationKeyMaterial` (which pins the
        step and level); requests sharing a material's digest coalesce
        into one engine batch."""
        return await self.submit(
            RotateRequest(
                c0_towers=tuple(tuple(t) for t in ct[0]),
                c1_towers=tuple(tuple(t) for t in ct[1]),
                material=material,
                deadline=self._absolute_deadline(deadline_s),
                **kwargs,
            )
        )

    async def kem_keygen(
        self,
        d: bytes | None = None,
        z: bytes | None = None,
        param_set: str = "ML-KEM-768",
        deadline_s: float | None = None,
        **kwargs,
    ):
        """One ML-KEM key generation; ``output`` is ``(ek, dk)``.

        Omitted seeds draw fresh ``os.urandom`` bytes at submission, so
        the enqueued request is already deterministic data."""
        import os

        return await self.submit(
            KemRequest(
                op="keygen",
                param_set=param_set,
                d=os.urandom(32) if d is None else d,
                z=os.urandom(32) if z is None else z,
                deadline=self._absolute_deadline(deadline_s),
                **kwargs,
            )
        )

    async def kem_encaps(
        self,
        ek: bytes,
        m: bytes | None = None,
        param_set: str = "ML-KEM-768",
        deadline_s: float | None = None,
        **kwargs,
    ):
        """One ML-KEM encapsulation; ``output`` is ``(shared, ct)``."""
        import os

        return await self.submit(
            KemRequest(
                op="encaps",
                param_set=param_set,
                ek=ek,
                m=os.urandom(32) if m is None else m,
                deadline=self._absolute_deadline(deadline_s),
                **kwargs,
            )
        )

    async def kem_decaps(
        self,
        dk: bytes,
        ct: bytes,
        param_set: str = "ML-KEM-768",
        deadline_s: float | None = None,
        **kwargs,
    ):
        """One ML-KEM decapsulation; ``output`` is the shared secret."""
        return await self.submit(
            KemRequest(
                op="decaps",
                param_set=param_set,
                dk=dk,
                ct=ct,
                deadline=self._absolute_deadline(deadline_s),
                **kwargs,
            )
        )

    # -- coalescing --------------------------------------------------------
    async def _window(self, key: tuple) -> None:
        """Latency budget: flush whatever gathered when the window closes."""
        try:
            await asyncio.sleep(self.config.batch_window_s)
        except asyncio.CancelledError:
            return
        self._flush(key)

    def _flush(self, key: tuple) -> None:
        """Detach the pending group and execute it in a worker thread."""
        group = self._groups.pop(key, None)
        if group is None or not group.requests:
            return
        timer = group.timer
        if (
            timer is not None
            and timer is not asyncio.current_task()
            and not timer.done()
        ):
            timer.cancel()
        task = asyncio.create_task(self._execute(group))
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    async def _execute(self, group: _PendingGroup) -> None:
        try:
            # Module attribute, not a bound import: tests substitute slow
            # executors by monkeypatching ``repro.serve.loop``'s view.
            results = await asyncio.to_thread(
                _requests.execute_group,
                group.requests,
                self.config.shards,
                self._pool,
                self.config.fuse,
            )
        except BaseException as exc:  # noqa: BLE001 - fan the failure out
            for fut in group.futures:
                if not fut.done():
                    fut.set_exception(exc)
            return
        # Deadlines are filtered again *after* the flush: a batch that ran
        # long (slow pool, contended thread) must not hand back results the
        # client had already given up on.
        now = time.monotonic()
        for req, fut, result in zip(group.requests, group.futures, results):
            if fut.done():
                continue
            if result.error is not None:
                fut.set_exception(DeadlineExceeded(result.error))
            elif req.deadline is not None and req.deadline <= now:
                fut.set_exception(
                    DeadlineExceeded("deadline exceeded during flush")
                )
            else:
                fut.set_result(result)
