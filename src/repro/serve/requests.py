"""Request/result types and batch assembly for the serving loop.

A request names a complete ring primitive (one NTT, one negacyclic
polynomial multiply, one L-tower HE ciphertext multiply) plus the kernel
parameters that determine which generated programs can carry it.
Requests with equal :attr:`group_key` are *coalescable*: they execute as
extra batch rows of the same program passes, which is exactly the axis
:class:`~repro.serve.sharding.ShardedBatchExecutor` spreads over worker
processes.

:func:`execute_group` is the synchronous dispatch core the asyncio loop
calls from a worker thread: it assembles the coalesced batch, runs the
program pass(es), and splits per-request :class:`ServeResult`\\ s back
out, each carrying the merged :class:`ExecutionStats` of every pass that
served it (stats count program passes, not batch rows -- see
:class:`repro.femu.ExecutionStats`).

Two serving-quality mechanisms live here:

* **Fusion** (default on): polymul and HE-multiply groups execute the
  cross-kernel-fused single program from :mod:`repro.compile` -- forward
  NTTs, pointwise and inverse stitched into one pass with intermediates
  held in the VRF -- instead of three passes round-tripping region
  memory.  ``fuse=False`` forces the three-pass path, and any group
  whose fused program cannot fit the ARF -- too many towers, or spill
  pressure from a large ``n/vlen`` ratio -- falls back to it
  automatically (the infeasible spec is remembered, so the probe
  compiles at most once); both paths are bit-identical.
* **Deadlines**: a request may carry an absolute monotonic ``deadline``.
  Requests already expired at flush time fail fast with a
  :class:`ServeResult` whose ``error`` is set (surfaced as
  :exc:`DeadlineExceeded` by the asyncio loop) instead of occupying
  batch rows in the flush.

Every program is obtained through the process-wide
:data:`~repro.compile.cache.PLAN_CACHE`, so repeated groups of the same
spec never recompile and shard workers receive each plan's prebuilt
image exactly once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.compile import MAX_FUSED_TOWERS, fused_spec, try_compile_spec
from repro.femu.semantics import ExecutionStats
from repro.rlwe.engine import (
    LevelKeyMaterial,
    RotationKeyMaterial,
    execute_level_batch,
    execute_rotation_batch,
)
from repro.serve.sharding import ShardedBatchExecutor, ShardPool
from repro.spiral.batched import generate_batched_ntt_program, tower_regions
from repro.spiral.kernels import generate_ntt_program
from repro.spiral.pointwise import (
    b_region,
    generate_batched_pointwise_program,
    generate_pointwise_program,
)

__all__ = [
    "DeadlineExceeded",
    "HeLevelRequest",
    "HeMultiplyRequest",
    "KemRequest",
    "NttRequest",
    "PolymulRequest",
    "RotateRequest",
    "ServeResult",
    "deadline_in",
    "execute_group",
    "he_group_moduli",
]


class DeadlineExceeded(RuntimeError):
    """A request's deadline passed before its batch executed."""


def deadline_in(seconds: float) -> float:
    """An absolute request deadline ``seconds`` from now (monotonic)."""
    return time.monotonic() + seconds


def _clamp_vlen(n: int, vlen: int) -> int:
    """NTT kernels need ``n >= 2*vlen``; small test rings clamp down."""
    return min(vlen, n // 2)


@dataclass(frozen=True)
class NttRequest:
    """One n-point negacyclic NTT (forward: natural in, bit-reversed out).

    ``spatial_shards > 1`` asks for the transform itself to be split over
    that many pool workers (:mod:`repro.compile.spatial`): latency
    scaling for a single oversized request, where batching scales
    throughput.  It is a *hint* -- the server clamps it to the largest
    feasible power of two for the ring shape and worker budget, and a
    request that cannot run spatially (or arrives alongside coalescable
    peers' worth of batch rows) falls back to the ordinary
    single-program pass, bit-identically.
    """

    values: tuple[int, ...]
    direction: str = "forward"
    q: int | None = None
    q_bits: int = 128
    vlen: int = 512
    deadline: float | None = None
    spatial_shards: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError("values must be non-empty")
        if self.direction not in ("forward", "inverse"):
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.spatial_shards < 1:
            raise ValueError("spatial_shards must be >= 1")

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def group_key(self) -> tuple:
        return (
            "ntt",
            self.n,
            self.direction,
            self.q,
            self.q_bits,
            self.vlen,
            self.spatial_shards,
        )


@dataclass(frozen=True)
class PolymulRequest:
    """c = a * b in Z_q[x]/(x^n + 1): one fused (or three-pass) multiply."""

    a: tuple[int, ...]
    b: tuple[int, ...]
    q: int | None = None
    q_bits: int = 128
    vlen: int = 512
    deadline: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "a", tuple(self.a))
        object.__setattr__(self, "b", tuple(self.b))
        if not self.a or len(self.a) != len(self.b):
            raise ValueError("operands must be non-empty and of equal length")

    @property
    def n(self) -> int:
        return len(self.a)

    @property
    def group_key(self) -> tuple:
        return ("polymul", self.n, self.q, self.q_bits, self.vlen)


@dataclass(frozen=True)
class HeMultiplyRequest:
    """One L-tower ciphertext multiply (fused, or the three-pass fallback).

    Tower residues must be canonical for the group's generated RNS basis;
    obtain the moduli with :func:`he_group_moduli` before building data.
    """

    a_towers: tuple[tuple[int, ...], ...]
    b_towers: tuple[tuple[int, ...], ...]
    q_bits: int = 128
    vlen: int = 512
    deadline: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "a_towers", tuple(tuple(t) for t in self.a_towers)
        )
        object.__setattr__(
            self, "b_towers", tuple(tuple(t) for t in self.b_towers)
        )
        if not self.a_towers or len(self.a_towers) != len(self.b_towers):
            raise ValueError("operand tower counts must match and be >= 1")
        lengths = {len(t) for t in (*self.a_towers, *self.b_towers)}
        if len(lengths) != 1:
            raise ValueError("every tower must have the same ring degree")

    @property
    def n(self) -> int:
        return len(self.a_towers[0])

    @property
    def towers(self) -> int:
        return len(self.a_towers)

    @property
    def group_key(self) -> tuple:
        return ("he", self.n, self.towers, self.q_bits, self.vlen)


@dataclass(frozen=True)
class HeLevelRequest:
    """One full CKKS level: multiply + relinearize + rescale.

    Operands are two 2-component ciphertexts as residue rows over the
    group's chain (``material.moduli``); the
    :class:`~repro.rlwe.engine.LevelKeyMaterial` carries the key spectra
    and constants.  Requests coalesce whenever their materials share a
    *chain shape* (:attr:`~repro.rlwe.engine.LevelKeyMaterial.shape_digest`
    -- ring degree, chain, special prime, digit constants): differing key
    spectra ride along as per-request batch rows of the key-switch
    passes, so multi-tenant traffic under different evaluation keys still
    fills one batch -- and shards the same way.  The result's ``output``
    is ``[out0_towers, out1_towers]`` one level down.
    """

    x0_towers: tuple[tuple[int, ...], ...]
    x1_towers: tuple[tuple[int, ...], ...]
    y0_towers: tuple[tuple[int, ...], ...]
    y1_towers: tuple[tuple[int, ...], ...]
    material: LevelKeyMaterial
    vlen: int = 512
    deadline: float | None = None

    def __post_init__(self) -> None:
        for name in ("x0_towers", "x1_towers", "y0_towers", "y1_towers"):
            object.__setattr__(
                self, name, tuple(tuple(t) for t in getattr(self, name))
            )
        towers = {
            len(getattr(self, name))
            for name in ("x0_towers", "x1_towers", "y0_towers", "y1_towers")
        }
        if towers != {self.material.digits}:
            raise ValueError(
                "every component needs one tower per chain modulus"
            )
        lengths = {
            len(t)
            for name in ("x0_towers", "x1_towers", "y0_towers", "y1_towers")
            for t in getattr(self, name)
        }
        if lengths != {self.material.n}:
            raise ValueError("every tower must match the material's degree")

    @property
    def n(self) -> int:
        return self.material.n

    @property
    def towers(self) -> int:
        return self.material.digits

    @property
    def group_key(self) -> tuple:
        return (
            "he_level",
            self.n,
            self.towers,
            self.material.shape_digest,
            self.vlen,
        )


@dataclass(frozen=True)
class RotateRequest:
    """One CKKS Galois rotation: slots shift left by the material's step.

    The ciphertext is two components of residue rows over the group's
    chain (``material.moduli``); the
    :class:`~repro.rlwe.engine.RotationKeyMaterial` carries the step's
    sigma^{-1}-permuted Galois-key spectra.  Requests sharing one
    material -- same key set, step *and* level, via the content digest --
    coalesce into wider batches of every engine pass.  The result's
    ``output`` is ``[out0_towers, out1_towers]`` at the same level.
    """

    c0_towers: tuple[tuple[int, ...], ...]
    c1_towers: tuple[tuple[int, ...], ...]
    material: RotationKeyMaterial
    vlen: int = 512
    deadline: float | None = None

    def __post_init__(self) -> None:
        for name in ("c0_towers", "c1_towers"):
            object.__setattr__(
                self, name, tuple(tuple(t) for t in getattr(self, name))
            )
        towers = {len(self.c0_towers), len(self.c1_towers)}
        if towers != {self.material.digits}:
            raise ValueError(
                "every component needs one tower per chain modulus"
            )
        lengths = {len(t) for t in (*self.c0_towers, *self.c1_towers)}
        if lengths != {self.material.n}:
            raise ValueError("every tower must match the material's degree")

    @property
    def n(self) -> int:
        return self.material.n

    @property
    def towers(self) -> int:
        return self.material.digits

    @property
    def group_key(self) -> tuple:
        return (
            "rotate",
            self.n,
            self.towers,
            self.material.digest,
            self.vlen,
        )


@dataclass(frozen=True)
class KemRequest:
    """One ML-KEM handshake operation: keygen, encaps or decaps.

    The nanoPU-style traffic class: thousands of small latency-critical
    requests whose ring work (incomplete NTTs, degree-2 basemuls)
    coalesces into wide batched passes through
    :class:`~repro.rlwe.kem_engine.KemEngine`.  The payload is the FIPS
    203 byte interface -- ``op="keygen"`` carries the 32-byte seeds
    ``(d, z)``, ``op="encaps"`` the encapsulation key and 32-byte seed
    ``(ek, m)``, ``op="decaps"`` the decapsulation key and ciphertext
    ``(dk, ct)`` -- and the result ``output`` mirrors the oracle:
    ``(ek, dk)`` / ``(shared, ct)`` / ``shared``.  Requests coalesce per
    (parameter set, op): batch row r of every engine pass is request r.
    """

    op: str
    param_set: str = "ML-KEM-768"
    d: bytes | None = None
    z: bytes | None = None
    ek: bytes | None = None
    m: bytes | None = None
    dk: bytes | None = None
    ct: bytes | None = None
    vlen: int = 64
    deadline: float | None = None

    def __post_init__(self) -> None:
        from repro.rlwe.kyber import get_params

        params = get_params(self.param_set)
        needed = {
            "keygen": ("d", "z"),
            "encaps": ("ek", "m"),
            "decaps": ("dk", "ct"),
        }.get(self.op)
        if needed is None:
            raise ValueError(
                f"unknown KEM op {self.op!r}; expected keygen/encaps/decaps"
            )
        for field_name in needed:
            value = getattr(self, field_name)
            if not isinstance(value, bytes):
                raise ValueError(
                    f"op {self.op!r} needs bytes for {field_name!r}"
                )
        sizes = {
            "d": 32,
            "z": 32,
            "m": 32,
            "ek": params.ek_bytes,
            "dk": params.dk_bytes,
            "ct": params.ct_bytes,
        }
        for field_name in needed:
            expected = sizes[field_name]
            if len(getattr(self, field_name)) != expected:
                raise ValueError(
                    f"{field_name!r} must be {expected} bytes for "
                    f"{params.name}"
                )
        if not 1 <= self.vlen <= 64:
            raise ValueError("KEM vlen must be in 1..64 (128-point NTTs)")

    @property
    def group_key(self) -> tuple:
        return ("kem", self.param_set, self.op, self.vlen)


Request = (
    NttRequest
    | PolymulRequest
    | HeMultiplyRequest
    | HeLevelRequest
    | RotateRequest
    | KemRequest
)


def he_group_moduli(
    n: int, towers: int, q_bits: int = 128, vlen: int = 512
) -> tuple[int, ...]:
    """The RNS moduli an :class:`HeMultiplyRequest` group executes under.

    Derived from the (cached) batched forward kernel, so clients can build
    canonical residues for exactly the basis the server will use (the
    fused kernels resolve the identical basis).
    """
    fwd = generate_batched_ntt_program(
        n,
        num_towers=towers,
        direction="forward",
        vlen=_clamp_vlen(n, vlen),
        q_bits=q_bits,
    )
    return tuple(fwd.metadata["moduli"][k + 1] for k in range(towers))


@dataclass
class ServeResult:
    """Per-request outcome returned by the serving loop.

    Attributes:
        output: the primitive's result -- coefficient row for NTT/polymul,
            one residue row per tower for HE multiplies; ``None`` when
            ``error`` is set.
        stats: merged :class:`ExecutionStats` over every program pass that
            served this request (each pass counted once, like one
            :class:`BatchExecutor` run, regardless of coalesced width).
        dtype_path: element representation the engine chose.
        shards: effective worker count the batch was spread over.
        batched_with: total requests coalesced into the same dispatch.
        wall_s: wall-clock seconds of the whole dispatched group.
        error: failure note (e.g. a missed deadline), or ``None``.
    """

    output: list | None
    stats: ExecutionStats
    dtype_path: str
    shards: int
    batched_with: int
    wall_s: float = 0.0
    error: str | None = None


def _expired_result() -> ServeResult:
    return ServeResult(
        output=None,
        stats=ExecutionStats(),
        dtype_path="",
        shards=0,
        batched_with=0,
        error="deadline exceeded before dispatch",
    )


def _run_pass(
    program,
    region_rows: dict,
    batch: int,
    shards: int,
    pool: ShardPool | None,
) -> tuple[ShardedBatchExecutor, ExecutionStats]:
    ex = ShardedBatchExecutor(program, batch=batch, shards=shards, pool=pool)
    for region, rows in region_rows.items():
        ex.write_region(region, rows)
    stats = ex.run()
    return ex, stats


def _execute_spatial_ntt(
    req: NttRequest, shards: int, pool: ShardPool | None
) -> ServeResult | None:
    """Serve one oversized request spatially, or ``None`` to batch it.

    The effective shard count is the largest power of two not exceeding
    the request's hint, the worker budget, and the structural
    :func:`~repro.compile.spatial.max_feasible_shards` bound; anything
    that clamps below 2 -- or an infeasible plan -- returns ``None`` so
    the caller falls through to the ordinary batched pass.
    """
    from repro.compile import KernelSpec
    from repro.compile.spatial import max_feasible_shards, try_plan_spatial
    from repro.serve.sharding import SpatialExecutor

    vlen = _clamp_vlen(req.n, req.vlen)
    workers = pool.shards if pool is not None else max(shards, 1)
    s = min(req.spatial_shards, workers, max_feasible_shards(req.n, vlen))
    s = 1 << max(s.bit_length() - 1, 0)  # largest power of two <= s
    if s < 2:
        return None
    plan = try_plan_spatial(
        KernelSpec(
            kind="ntt",
            n=req.n,
            vlen=vlen,
            q=req.q,
            q_bits=req.q_bits,
            direction=req.direction,
            spatial_shards=s,
        ),
        workers=workers,
    )
    if plan is None:
        return None
    use_pool = pool if pool is not None and pool.shards >= plan.shards else None
    run = SpatialExecutor(plan, pool=use_pool).run(list(req.values))
    return ServeResult(
        output=run.output,
        stats=run.stats,
        dtype_path=run.dtype_path,
        shards=plan.shards,
        batched_with=1,
    )


def _execute_ntt(
    requests: Sequence[NttRequest],
    shards: int,
    pool: ShardPool | None,
    fuse: bool,
) -> list[ServeResult]:
    req0 = requests[0]
    if len(requests) == 1 and req0.spatial_shards > 1:
        # A lone oversized request splits spatially; groups that actually
        # coalesced keep the batch axis (throughput beats latency there).
        spatial = _execute_spatial_ntt(req0, shards, pool)
        if spatial is not None:
            return [spatial]
    program = generate_ntt_program(
        req0.n,
        req0.direction,
        vlen=_clamp_vlen(req0.n, req0.vlen),
        q_bits=req0.q_bits,
        q=req0.q,
    )
    rows = [list(r.values) for r in requests]
    ex, stats = _run_pass(
        program, {program.input_region: rows}, len(rows), shards, pool
    )
    outs = ex.read_region(program.output_region)
    ex.close()
    return [
        ServeResult(
            output=out,
            stats=stats.copy(),
            dtype_path=ex.dtype_path,
            shards=ex.shards,
            batched_with=len(requests),
        )
        for out in outs
    ]


def _fused_program_or_none(req0) -> "object | None":
    """The group's fused program, or None to use the three-pass path.

    Feasibility depends on register pressure (towers x n/vlen against the
    finite spill area) and is only truly decided by register allocation,
    so this probes via the memoized
    :func:`~repro.compile.try_compile_spec` -- a spec that failed once is
    never compiled again, and every later group skips straight to the
    staged path.
    """
    towers = getattr(req0, "towers", 1)
    if towers > MAX_FUSED_TOWERS:
        return None
    return try_compile_spec(
        fused_spec(
            req0.n,
            towers,
            q=getattr(req0, "q", None),
            q_bits=req0.q_bits,
            vlen=_clamp_vlen(req0.n, req0.vlen),
        )
    )


def _execute_fused(
    requests: Sequence[PolymulRequest] | Sequence[HeMultiplyRequest],
    shards: int,
    pool: ShardPool | None,
    program,
) -> list[ServeResult]:
    """One fused pass serves the whole group: batch row r = request r."""
    req0 = requests[0]
    count = len(requests)
    towers = getattr(req0, "towers", 1)
    rows: dict = {}
    for k, (a_reg, breg, _out) in enumerate(program.metadata["tower_regions"]):
        if towers == 1:
            rows[a_reg] = [list(r.a) for r in requests]
            rows[breg] = [list(r.b) for r in requests]
        else:
            rows[a_reg] = [list(r.a_towers[k]) for r in requests]
            rows[breg] = [list(r.b_towers[k]) for r in requests]
    ex, stats = _run_pass(program, rows, count, shards, pool)
    outs = [
        ex.read_region(out)
        for _a, _b, out in program.metadata["tower_regions"]
    ]
    dtype_path = ex.dtype_path
    eff_shards = ex.shards
    ex.close()
    return [
        ServeResult(
            output=(
                outs[0][r]
                if towers == 1
                else [outs[k][r] for k in range(towers)]
            ),
            stats=stats.copy(),
            dtype_path=dtype_path,
            shards=eff_shards,
            batched_with=count,
        )
        for r in range(count)
    ]


def _execute_polymul(
    requests: Sequence[PolymulRequest],
    shards: int,
    pool: ShardPool | None,
    fuse: bool,
) -> list[ServeResult]:
    if fuse:
        program = _fused_program_or_none(requests[0])
        if program is not None:
            return _execute_fused(requests, shards, pool, program)
    req0 = requests[0]
    count = len(requests)
    vlen = _clamp_vlen(req0.n, req0.vlen)
    fwd = generate_ntt_program(
        req0.n, "forward", vlen=vlen, q_bits=req0.q_bits, q=req0.q
    )
    inv = generate_ntt_program(
        req0.n, "inverse", vlen=vlen, q_bits=req0.q_bits, q=req0.q
    )
    modulus = fwd.metadata["modulus"]
    pw = generate_pointwise_program(
        req0.n, "mul", vlen=vlen, q_bits=req0.q_bits, q=modulus
    )
    # Pass 1: both operands of every request through one forward batch
    # (a-block rows first, then the b-block).
    fwd_rows = [list(r.a) for r in requests] + [list(r.b) for r in requests]
    ex, fwd_stats = _run_pass(
        fwd, {fwd.input_region: fwd_rows}, 2 * count, shards, pool
    )
    spectral = ex.read_region(fwd.output_region)
    ex.close()
    # Pass 2: NTT-domain products.
    ex, pw_stats = _run_pass(
        pw,
        {
            pw.input_region: spectral[:count],
            b_region(pw): spectral[count:],
        },
        count,
        shards,
        pool,
    )
    products_hat = ex.read_region(pw.output_region)
    ex.close()
    # Pass 3: back to coefficients.
    ex, inv_stats = _run_pass(
        inv, {inv.input_region: products_hat}, count, shards, pool
    )
    outputs = ex.read_region(inv.output_region)
    dtype_path = ex.dtype_path
    eff_shards = ex.shards
    ex.close()
    merged = fwd_stats + pw_stats + inv_stats
    return [
        ServeResult(
            output=out,
            stats=merged.copy(),
            dtype_path=dtype_path,
            shards=eff_shards,
            batched_with=count,
        )
        for out in outputs
    ]


def _execute_he(
    requests: Sequence[HeMultiplyRequest],
    shards: int,
    pool: ShardPool | None,
    fuse: bool,
) -> list[ServeResult]:
    req0 = requests[0]
    if fuse:
        program = _fused_program_or_none(req0)
        if program is not None:
            return _execute_fused(requests, shards, pool, program)
    count = len(requests)
    n, towers = req0.n, req0.towers
    vlen = _clamp_vlen(n, req0.vlen)
    fwd = generate_batched_ntt_program(
        n, num_towers=towers, direction="forward", vlen=vlen, q_bits=req0.q_bits
    )
    inv = generate_batched_ntt_program(
        n, num_towers=towers, direction="inverse", vlen=vlen, q_bits=req0.q_bits
    )
    moduli = he_group_moduli(n, towers, q_bits=req0.q_bits, vlen=req0.vlen)
    pw = generate_batched_pointwise_program(n, moduli, "mul", vlen=vlen)
    # Pass 1: all towers of both operands of every request, one batch of
    # 2*count rows per tower region (a-block rows first, then b-block).
    # The count=1 shape of this three-pass flow also lives in
    # repro.eval.he_pipeline.run_functional_he_multiply; both are pinned
    # to the same software oracle by their tests.
    fwd_rows = {
        inp: [list(r.a_towers[k]) for r in requests]
        + [list(r.b_towers[k]) for r in requests]
        for k, (inp, _out) in enumerate(tower_regions(fwd))
    }
    ex, fwd_stats = _run_pass(fwd, fwd_rows, 2 * count, shards, pool)
    spectral = [ex.read_region(out) for _inp, out in tower_regions(fwd)]
    ex.close()
    # Pass 2: NTT-domain product, all towers in one pass of count rows.
    pw_rows = {}
    for k, (a_reg, breg, _out) in enumerate(pw.metadata["tower_regions"]):
        pw_rows[a_reg] = spectral[k][:count]
        pw_rows[breg] = spectral[k][count:]
    ex, pw_stats = _run_pass(pw, pw_rows, count, shards, pool)
    products_hat = [
        ex.read_region(out) for _a, _b, out in pw.metadata["tower_regions"]
    ]
    ex.close()
    # Pass 3: back to coefficients.
    inv_rows = {
        inp: products_hat[k]
        for k, (inp, _out) in enumerate(tower_regions(inv))
    }
    ex, inv_stats = _run_pass(inv, inv_rows, count, shards, pool)
    product_towers = [ex.read_region(out) for _inp, out in tower_regions(inv)]
    dtype_path = ex.dtype_path
    eff_shards = ex.shards
    ex.close()
    merged = fwd_stats + pw_stats + inv_stats
    return [
        ServeResult(
            output=[product_towers[k][r] for k in range(towers)],
            stats=merged.copy(),
            dtype_path=dtype_path,
            shards=eff_shards,
            batched_with=count,
        )
        for r in range(count)
    ]


def _execute_he_level(
    requests: Sequence[HeLevelRequest],
    shards: int,
    pool: ShardPool | None,
    fuse: bool,
) -> list[ServeResult]:
    """One coalesced batch of full CKKS levels through the engine.

    Batch row r of every engine pass is request r; the group key only
    pins the chain *shape*, so each row carries its own key material
    (mixed evaluation keys coalesce).  The fused/staged split, sharding
    and the per-pass structure live in
    :func:`repro.rlwe.engine.execute_level_batch`.
    """
    req0 = requests[0]
    count = len(requests)
    outputs, report = execute_level_batch(
        req0.material,
        [
            ([list(t) for t in r.x0_towers], [list(t) for t in r.x1_towers])
            for r in requests
        ],
        [
            ([list(t) for t in r.y0_towers], [list(t) for t in r.y1_towers])
            for r in requests
        ],
        vlen=_clamp_vlen(req0.n, req0.vlen),
        shards=shards,
        pool=pool,
        fuse=fuse,
        materials=[r.material for r in requests],
    )
    return [
        ServeResult(
            output=[out0, out1],
            stats=report["stats"].copy(),
            dtype_path=report["dtype_path"],
            shards=report["shards"],
            batched_with=count,
        )
        for out0, out1 in outputs
    ]


def _execute_rotate(
    requests: Sequence[RotateRequest],
    shards: int,
    pool: ShardPool | None,
    fuse: bool,
) -> list[ServeResult]:
    """One coalesced batch of Galois rotations through the engine.

    Batch row r of every engine pass is request r; the fused/staged
    split, sharding and the sigma-last dataflow live in
    :func:`repro.rlwe.engine.execute_rotation_batch`.
    """
    req0 = requests[0]
    count = len(requests)
    outputs, report = execute_rotation_batch(
        req0.material,
        [
            ([list(t) for t in r.c0_towers], [list(t) for t in r.c1_towers])
            for r in requests
        ],
        vlen=_clamp_vlen(req0.n, req0.vlen),
        shards=shards,
        pool=pool,
        fuse=fuse,
    )
    return [
        ServeResult(
            output=[out0, out1],
            stats=report["stats"].copy(),
            dtype_path=report["dtype_path"],
            shards=report["shards"],
            batched_with=count,
        )
        for out0, out1 in outputs
    ]


def _execute_kem(
    requests: Sequence[KemRequest],
    shards: int,
    pool: ShardPool | None,
    fuse: bool,
) -> list[ServeResult]:
    """One coalesced batch of ML-KEM handshake ops through the engine.

    Batch row r of every NTT/basemul pass is request r; the programs
    come from the process-wide plan cache, so repeated KEM groups never
    recompile.  ``fuse`` has no effect here -- the KEM passes are
    already the minimal set (the basemul kernel accumulates all k
    summands in one pass).
    """
    from repro.rlwe.kem_engine import KemEngine

    req0 = requests[0]
    engine = KemEngine(
        req0.param_set, vlen=req0.vlen, shards=shards, pool=pool
    )
    if req0.op == "keygen":
        outputs, report = engine.keygen_batch(
            [(r.d, r.z) for r in requests]
        )
    elif req0.op == "encaps":
        outputs, report = engine.encaps_batch(
            [(r.ek, r.m) for r in requests]
        )
    else:
        outputs, report = engine.decaps_batch(
            [(r.dk, r.ct) for r in requests]
        )
    stats = report["stats"] or ExecutionStats()
    return [
        ServeResult(
            output=out,
            stats=stats.copy(),
            dtype_path=report["dtype_path"],
            shards=report["shards"],
            batched_with=len(requests),
        )
        for out in outputs
    ]


_EXECUTORS = {
    NttRequest: _execute_ntt,
    PolymulRequest: _execute_polymul,
    HeMultiplyRequest: _execute_he,
    HeLevelRequest: _execute_he_level,
    RotateRequest: _execute_rotate,
    KemRequest: _execute_kem,
}


def execute_group(
    requests: Sequence[Request],
    shards: int = 1,
    pool: ShardPool | None = None,
    fuse: bool = True,
) -> list[ServeResult]:
    """Run one coalesced group of same-key requests; results in order.

    The synchronous core of the serving loop, also usable directly for
    offline batch jobs.  All requests must share one :attr:`group_key`.
    Requests whose :attr:`deadline` already passed are *not* executed:
    they fail fast with an error result while the rest of the group
    proceeds (their positions in the returned list line up with the
    input).  ``fuse=False`` forces the three-pass polymul/HE path.
    """
    if not requests:
        return []
    keys = {r.group_key for r in requests}
    if len(keys) != 1:
        raise ValueError(f"cannot coalesce mixed request groups: {keys}")
    now = time.monotonic()
    live = [
        (i, r)
        for i, r in enumerate(requests)
        if r.deadline is None or r.deadline > now
    ]
    results: list[ServeResult] = [_expired_result() for _ in requests]
    if live:
        execute = _EXECUTORS[type(requests[0])]
        t0 = time.perf_counter()
        live_results = execute([r for _i, r in live], shards, pool, fuse)
        wall_s = time.perf_counter() - t0
        for (i, _r), result in zip(live, live_results):
            result.wall_s = wall_s
            results[i] = result
    return results
