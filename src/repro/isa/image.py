"""Binary program images: what the host RISC-V core loads into the RPU.

The paper's launch flow stores kernels in the 512 KiB instruction memory
and materializes constants into VDM/SDM before issuing the start command.
This module serializes a complete :class:`~repro.isa.program.Program` --
instruction words plus data segments, register preloads and region
contracts -- into a self-describing binary image, and loads it back
bit-exactly.  Useful for shipping kernels between tools (see
``python -m repro.isa.tool``).

Format (little-endian):

* magic ``B512IMG1`` (8 bytes)
* header: vlen, instruction count, segment counts, region/preload counts
* instruction words (8 bytes each, the Table I encoding)
* segments / preloads / regions, each with a varint-free fixed layout
  (element values are 16-byte unsigned integers -- the 128-bit datapath)
* a UTF-8 name + JSON-free metadata subset (integers only)
"""

from __future__ import annotations

import struct

from repro.isa.encoding import decode_instruction, encode_instruction
from repro.isa.program import DataSegment, Program, RegionSpec

MAGIC = b"B512IMG1"
_ELEMENT_BYTES = 16
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return _U32.pack(len(raw)) + raw


def _unpack_str(buf: memoryview, offset: int) -> tuple[str, int]:
    (length,) = _U32.unpack_from(buf, offset)
    offset += 4
    text = bytes(buf[offset : offset + length]).decode("utf-8")
    return text, offset + length


def _pack_values(values: tuple[int, ...]) -> bytes:
    out = bytearray(_U32.pack(len(values)))
    for v in values:
        if not 0 <= v < 1 << 128:
            raise ValueError("element values must fit 128 bits")
        out += v.to_bytes(_ELEMENT_BYTES, "little")
    return bytes(out)


def _unpack_values(buf: memoryview, offset: int) -> tuple[tuple[int, ...], int]:
    (count,) = _U32.unpack_from(buf, offset)
    offset += 4
    values = []
    for _ in range(count):
        values.append(int.from_bytes(buf[offset : offset + _ELEMENT_BYTES], "little"))
        offset += _ELEMENT_BYTES
    return tuple(values), offset


def _pack_segment(seg: DataSegment) -> bytes:
    return _pack_str(seg.name) + _U64.pack(seg.base) + _pack_values(seg.values)


def _unpack_segment(buf: memoryview, offset: int) -> tuple[DataSegment, int]:
    name, offset = _unpack_str(buf, offset)
    (base,) = _U64.unpack_from(buf, offset)
    offset += 8
    values, offset = _unpack_values(buf, offset)
    return DataSegment(name, base, values), offset


def _pack_region(region: RegionSpec | None) -> bytes:
    if region is None:
        return _U32.pack(0)
    return (
        _U32.pack(1)
        + _pack_str(region.name)
        + _U64.pack(region.base)
        + _U64.pack(region.length)
        + _pack_str(region.layout)
    )


def _unpack_region(buf: memoryview, offset: int) -> tuple[RegionSpec | None, int]:
    (present,) = _U32.unpack_from(buf, offset)
    offset += 4
    if not present:
        return None, offset
    name, offset = _unpack_str(buf, offset)
    (base,) = _U64.unpack_from(buf, offset)
    (length,) = _U64.unpack_from(buf, offset + 8)
    offset += 16
    layout, offset = _unpack_str(buf, offset)
    return RegionSpec(name, base, length, layout), offset


def _pack_preload(preload: dict[int, int]) -> bytes:
    out = bytearray(_U32.pack(len(preload)))
    for idx, value in sorted(preload.items()):
        out += _U32.pack(idx)
        out += value.to_bytes(_ELEMENT_BYTES, "little")
    return bytes(out)


def _unpack_preload(buf: memoryview, offset: int) -> tuple[dict[int, int], int]:
    (count,) = _U32.unpack_from(buf, offset)
    offset += 4
    preload = {}
    for _ in range(count):
        (idx,) = _U32.unpack_from(buf, offset)
        offset += 4
        preload[idx] = int.from_bytes(buf[offset : offset + _ELEMENT_BYTES], "little")
        offset += _ELEMENT_BYTES
    return preload, offset


def save_image(program: Program) -> bytes:
    """Serialize a program to a binary image."""
    words = [encode_instruction(i) for i in program.instructions]
    out = bytearray(MAGIC)
    out += _U32.pack(program.vlen)
    out += _U32.pack(len(words))
    out += _U64.pack(program.extra_vdm_words)
    for w in words:
        out += _U64.pack(w)
    out += _pack_str(program.name)
    out += _U32.pack(len(program.vdm_segments))
    for seg in program.vdm_segments:
        out += _pack_segment(seg)
    out += _U32.pack(len(program.sdm_segments))
    for seg in program.sdm_segments:
        out += _pack_segment(seg)
    out += _pack_preload(program.arf_init)
    out += _pack_preload(program.mrf_init)
    out += _pack_preload(program.srf_init)
    out += _pack_region(program.input_region)
    out += _pack_region(program.output_region)
    return bytes(out)


def load_image(data: bytes) -> Program:
    """Deserialize a binary image back into a :class:`Program`."""
    if data[: len(MAGIC)] != MAGIC:
        raise ValueError("not a B512 program image (bad magic)")
    buf = memoryview(data)
    offset = len(MAGIC)
    (vlen,) = _U32.unpack_from(buf, offset)
    (count,) = _U32.unpack_from(buf, offset + 4)
    offset += 8
    (extra_vdm,) = _U64.unpack_from(buf, offset)
    offset += 8
    instructions = []
    for _ in range(count):
        (word,) = _U64.unpack_from(buf, offset)
        instructions.append(decode_instruction(word))
        offset += 8
    name, offset = _unpack_str(buf, offset)
    vdm_segments = []
    (nseg,) = _U32.unpack_from(buf, offset)
    offset += 4
    for _ in range(nseg):
        seg, offset = _unpack_segment(buf, offset)
        vdm_segments.append(seg)
    sdm_segments = []
    (nseg,) = _U32.unpack_from(buf, offset)
    offset += 4
    for _ in range(nseg):
        seg, offset = _unpack_segment(buf, offset)
        sdm_segments.append(seg)
    arf, offset = _unpack_preload(buf, offset)
    mrf, offset = _unpack_preload(buf, offset)
    srf, offset = _unpack_preload(buf, offset)
    input_region, offset = _unpack_region(buf, offset)
    output_region, offset = _unpack_region(buf, offset)
    return Program(
        name=name,
        instructions=instructions,
        vlen=vlen,
        vdm_segments=vdm_segments,
        sdm_segments=sdm_segments,
        arf_init=arf,
        mrf_init=mrf,
        srf_init=srf,
        input_region=input_region,
        output_region=output_region,
        extra_vdm_words=extra_vdm,
        metadata={"loaded_from_image": True},
    )
