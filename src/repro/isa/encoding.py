"""Bit-exact 64-bit encoding of B512 instructions (Table I of the paper).

Field layout (bit ranges inclusive, matching the paper's table header)::

    [63:55] [54:49] [48]  [47:44] [43:24]  [23:18] [17:12] [11:6] [5:0]
    VD1     VT1     BFLY  Opcode  Address  VD      VS/Mode VT/RT  RM
                                                           /Value

* Load/store instructions use Address, VD (dest or store-source), Mode in
  the VS slot, Value in the VT slot and RM as the ARF base register; SLOAD
  puts its SRF destination in the RT slot.
* Compute instructions use VD/VS/VT(+RT for vector-scalar), RM as the MRF
  modulus register; butterflies additionally use VD1, VT1 and the BFLY bit
  as the CT/GS variant selector.
* Shuffles use VD/VS/VT only.
"""

from __future__ import annotations

from repro.isa.addressing import AddressMode
from repro.isa.instructions import Instruction
from repro.isa.opcodes import InstructionClass, Opcode

_VD1_SHIFT = 55
_VT1_SHIFT = 49
_BFLY_SHIFT = 48
_OPCODE_SHIFT = 44
_ADDR_SHIFT = 24
_VD_SHIFT = 18
_VS_SHIFT = 12
_VT_SHIFT = 6
_RM_SHIFT = 0

_MASK6 = 0x3F
_MASK20 = 0xFFFFF


def encode_instruction(inst: Instruction) -> int:
    """Encode to the 64-bit machine word."""
    word = (inst.opcode.value & 0xF) << _OPCODE_SHIFT
    klass = inst.instruction_class
    if klass is InstructionClass.LSI:
        word |= (inst.offset & _MASK20) << _ADDR_SHIFT
        word |= ((inst.rm or 0) & _MASK6) << _RM_SHIFT
        if inst.opcode is Opcode.SLOAD:
            word |= ((inst.rt or 0) & _MASK6) << _VT_SHIFT
        else:
            word |= ((inst.vd or 0) & _MASK6) << _VD_SHIFT
            word |= (inst.mode.value & _MASK6) << _VS_SHIFT
            word |= (inst.value & _MASK6) << _VT_SHIFT
    elif klass is InstructionClass.CI:
        word |= ((inst.vd or 0) & _MASK6) << _VD_SHIFT
        word |= ((inst.vs or 0) & _MASK6) << _VS_SHIFT
        word |= ((inst.rm or 0) & _MASK6) << _RM_SHIFT
        if inst.opcode.is_vector_scalar:
            word |= ((inst.rt or 0) & _MASK6) << _VT_SHIFT
        else:
            word |= ((inst.vt or 0) & _MASK6) << _VT_SHIFT
        if inst.opcode is Opcode.BFLY:
            word |= ((inst.vd1 or 0) & _MASK6) << _VD1_SHIFT
            word |= ((inst.vt1 or 0) & _MASK6) << _VT1_SHIFT
            word |= (inst.bfly_variant & 1) << _BFLY_SHIFT
    elif klass is InstructionClass.SI:
        word |= ((inst.vd or 0) & _MASK6) << _VD_SHIFT
        word |= ((inst.vs or 0) & _MASK6) << _VS_SHIFT
        word |= ((inst.vt or 0) & _MASK6) << _VT_SHIFT
    # CTRL (HALT) encodes as the bare opcode.
    return word


def decode_instruction(word: int) -> Instruction:
    """Decode a 64-bit machine word back into an :class:`Instruction`."""
    if not 0 <= word < 1 << 64:
        raise ValueError("machine words are 64 bits")
    opcode = Opcode((word >> _OPCODE_SHIFT) & 0xF)
    klass = opcode.instruction_class
    if klass is InstructionClass.CTRL:
        return Instruction(opcode)
    if klass is InstructionClass.LSI:
        offset = (word >> _ADDR_SHIFT) & _MASK20
        rm = (word >> _RM_SHIFT) & _MASK6
        if opcode is Opcode.SLOAD:
            rt = (word >> _VT_SHIFT) & _MASK6
            return Instruction(opcode, rt=rt, rm=rm, offset=offset)
        vd = (word >> _VD_SHIFT) & _MASK6
        mode = AddressMode((word >> _VS_SHIFT) & _MASK6)
        value = (word >> _VT_SHIFT) & _MASK6
        return Instruction(
            opcode, vd=vd, rm=rm, offset=offset, mode=mode, value=value
        )
    if klass is InstructionClass.CI:
        vd = (word >> _VD_SHIFT) & _MASK6
        vs = (word >> _VS_SHIFT) & _MASK6
        rm = (word >> _RM_SHIFT) & _MASK6
        if opcode.is_vector_scalar:
            rt = (word >> _VT_SHIFT) & _MASK6
            return Instruction(opcode, vd=vd, vs=vs, rt=rt, rm=rm)
        vt = (word >> _VT_SHIFT) & _MASK6
        if opcode is Opcode.BFLY:
            vd1 = (word >> _VD1_SHIFT) & _MASK6
            vt1 = (word >> _VT1_SHIFT) & _MASK6
            variant = (word >> _BFLY_SHIFT) & 1
            return Instruction(
                opcode, vd=vd, vd1=vd1, vs=vs, vt=vt, vt1=vt1, rm=rm,
                bfly_variant=variant,
            )
        return Instruction(opcode, vd=vd, vs=vs, vt=vt, rm=rm)
    # SI
    vd = (word >> _VD_SHIFT) & _MASK6
    vs = (word >> _VS_SHIFT) & _MASK6
    vt = (word >> _VT_SHIFT) & _MASK6
    return Instruction(opcode, vd=vd, vs=vs, vt=vt)


def encode_program_words(instructions: list[Instruction]) -> list[int]:
    """Encode a whole kernel; the 512 KiB IM holds up to 65,536 words."""
    words = [encode_instruction(i) for i in instructions]
    if len(words) * 8 > 512 * 1024:
        raise ValueError("kernel exceeds the 512 KiB instruction memory")
    return words
