"""B512 kernel tooling: ``python -m repro.isa.tool <command>``.

Commands:

* ``gen N [--direction forward|inverse] [--unopt] [-o FILE]`` -- generate
  an NTT kernel (optionally writing a binary image);
* ``dis FILE`` -- disassemble a binary image;
* ``stat FILE`` -- instruction mix, segments and region contracts;
* ``sim FILE [--hples H --banks B]`` -- cycle-simulate an image.

The objdump/readelf of the RPU world, built on
:mod:`repro.isa.image` and the simulators.
"""

from __future__ import annotations

import argparse
import sys

from repro.isa.assembler import format_instruction
from repro.isa.image import load_image, save_image
from repro.isa.opcodes import InstructionClass


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.spiral.kernels import generate_ntt_program

    program = generate_ntt_program(
        args.n,
        direction=args.direction,
        optimize=not args.unopt,
        q_bits=args.q_bits,
    )
    print(program.summary())
    if args.output:
        with open(args.output, "wb") as f:
            f.write(save_image(program))
        print(f"wrote {args.output}")
    return 0


def _load(path: str):
    with open(path, "rb") as f:
        return load_image(f.read())


def _cmd_dis(args: argparse.Namespace) -> int:
    program = _load(args.file)
    print(f"# {program.name} (vlen={program.vlen})")
    for index, inst in enumerate(program.instructions):
        print(f"{index:6d}:  {format_instruction(inst)}")
    return 0


def _cmd_stat(args: argparse.Namespace) -> int:
    program = _load(args.file)
    counts = program.class_counts()
    print(program.summary())
    for klass in InstructionClass:
        print(f"  {klass.name:<5} {counts[klass]}")
    for seg in program.vdm_segments:
        print(f"  VDM segment {seg.name!r}: base={seg.base} len={len(seg.values)}")
    for seg in program.sdm_segments:
        print(f"  SDM segment {seg.name!r}: base={seg.base} len={len(seg.values)}")
    for label, region in (
        ("input", program.input_region),
        ("output", program.output_region),
    ):
        if region:
            print(
                f"  {label}: base={region.base} len={region.length} "
                f"layout={region.layout}"
            )
    print(f"  VDM footprint: {program.vdm_words_needed} elements")
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    from repro.perf.config import RpuConfig
    from repro.perf.engine import CycleSimulator

    program = _load(args.file)
    config = RpuConfig(
        num_hples=args.hples, vdm_banks=args.banks, vlen=program.vlen
    )
    report = CycleSimulator(config).run(program)
    print(report.summary())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.isa.tool", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate an NTT kernel")
    gen.add_argument("n", type=int)
    gen.add_argument("--direction", default="forward",
                     choices=("forward", "inverse"))
    gen.add_argument("--unopt", action="store_true")
    gen.add_argument("--q-bits", type=int, default=128)
    gen.add_argument("-o", "--output")
    gen.set_defaults(func=_cmd_gen)

    dis = sub.add_parser("dis", help="disassemble a kernel image")
    dis.add_argument("file")
    dis.set_defaults(func=_cmd_dis)

    stat = sub.add_parser("stat", help="kernel statistics")
    stat.add_argument("file")
    stat.set_defaults(func=_cmd_stat)

    sim = sub.add_parser("sim", help="cycle-simulate a kernel image")
    sim.add_argument("file")
    sim.add_argument("--hples", type=int, default=128)
    sim.add_argument("--banks", type=int, default=128)
    sim.set_defaults(func=_cmd_sim)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
