"""The B512 program container.

A :class:`Program` bundles a kernel's instruction stream with everything the
paper's "launch code" (section V) sets up before the RPU starts: VDM/SDM
data segments (twiddle tables, constants), address/modulus/scalar register
preloads, and descriptors of where the kernel expects its input and leaves
its output.  Both simulators consume this container.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.opcodes import InstructionClass, Opcode


@dataclass(frozen=True)
class DataSegment:
    """A named constant region materialized into VDM or SDM at launch."""

    name: str
    base: int
    values: tuple[int, ...]

    @property
    def end(self) -> int:
        return self.base + len(self.values)


@dataclass(frozen=True)
class RegionSpec:
    """Where a kernel reads its input / writes its output.

    ``layout`` documents the element ordering contract, e.g. ``"natural"``
    or ``"bit-reversed"`` for NTT kernels.
    """

    name: str
    base: int
    length: int
    layout: str = "natural"


@dataclass
class Program:
    """A complete, launchable B512 kernel.

    Attributes:
        name: human-readable kernel name (e.g. ``"ntt_fwd_65536_opt"``).
        instructions: the kernel body; a trailing HALT is appended by
            :meth:`finalize` if missing.
        vlen: vector length the kernel was generated for (512
            architecturally; unit tests shrink it).
        vdm_segments / sdm_segments: constant data to materialize.
        arf_init / mrf_init / srf_init: register-file preloads.
        input_region / output_region: data contracts for callers.
        metadata: free-form generator annotations (ring degree, direction,
            optimization level, rectangle depth, ...).
    """

    name: str
    instructions: list[Instruction] = field(default_factory=list)
    vlen: int = 512
    vdm_segments: list[DataSegment] = field(default_factory=list)
    sdm_segments: list[DataSegment] = field(default_factory=list)
    arf_init: dict[int, int] = field(default_factory=dict)
    mrf_init: dict[int, int] = field(default_factory=dict)
    srf_init: dict[int, int] = field(default_factory=dict)
    input_region: RegionSpec | None = None
    output_region: RegionSpec | None = None
    extra_vdm_words: int = 0
    metadata: dict = field(default_factory=dict)

    def finalize(self) -> "Program":
        """Append HALT if absent and sanity-check segment overlaps."""
        if not self.instructions or self.instructions[-1].opcode is not Opcode.HALT:
            from repro.isa.instructions import halt

            self.instructions.append(halt())
        spans = sorted(
            (seg.base, seg.end, seg.name) for seg in self.vdm_segments
        )
        for (b0, e0, n0), (b1, e1, n1) in zip(spans, spans[1:]):
            if b1 < e0:
                raise ValueError(f"VDM segments {n0!r} and {n1!r} overlap")
        return self

    def class_counts(self) -> dict[InstructionClass, int]:
        """Instruction mix: the paper quotes these for the 64K NTT (VI-F)."""
        counts = {klass: 0 for klass in InstructionClass}
        for inst in self.instructions:
            counts[inst.instruction_class] += 1
        return counts

    def count(self, klass: InstructionClass) -> int:
        return self.class_counts()[klass]

    @property
    def vdm_words_needed(self) -> int:
        """Minimum VDM size (in elements) the kernel touches statically."""
        top = 0
        for seg in self.vdm_segments:
            top = max(top, seg.end)
        for region in (self.input_region, self.output_region):
            if region is not None:
                top = max(top, region.base + region.length)
        return top + self.extra_vdm_words

    def summary(self) -> str:
        """One-line description used by examples and benchmarks."""
        counts = self.class_counts()
        return (
            f"{self.name}: {len(self.instructions)} instructions "
            f"(CI={counts[InstructionClass.CI]}, "
            f"SI={counts[InstructionClass.SI]}, "
            f"LSI={counts[InstructionClass.LSI]})"
        )
