"""Instruction model and builder functions for B512.

A single :class:`Instruction` dataclass covers all three instruction formats
of Table I; the builder functions (``vload``, ``bflyct``, ``unpklo``, ...)
are the programmer-facing surface and validate field ranges eagerly, so a
malformed instruction fails at construction rather than deep inside a
simulator run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.addressing import AddressMode
from repro.isa.opcodes import InstructionClass, Opcode

_REG_COUNT = 64
_OFFSET_BITS = 20

# BFLY variant-bit values.
BFLY_CT = 0
BFLY_GS = 1


def _check_reg(name: str, index: int | None) -> None:
    if index is not None and not 0 <= index < _REG_COUNT:
        raise ValueError(f"{name} register index {index} out of range [0, 64)")


@dataclass(frozen=True)
class Instruction:
    """One 64-bit B512 instruction.

    Field usage by class (unused fields stay None and encode as zero):

    * LSI: ``vd`` (vector dest / store source), ``rt`` (scalar dest for
      SLOAD), ``rm`` (ARF base register), ``offset`` (20-bit element
      offset), ``mode`` + ``value`` (addressing mode).
    * CI:  ``vd``/``vs``/``vt`` (+ ``vd1``/``vt1`` for BFLY), ``rt`` (SRF
      operand for vector-scalar forms), ``rm`` (MRF modulus register),
      ``bfly_variant`` (CT or GS).
    * SI:  ``vd``/``vs``/``vt``.
    """

    opcode: Opcode
    vd: int | None = None
    vs: int | None = None
    vt: int | None = None
    vd1: int | None = None
    vt1: int | None = None
    rt: int | None = None
    rm: int | None = None
    offset: int = 0
    mode: AddressMode = AddressMode.LINEAR
    value: int = 0
    bfly_variant: int = BFLY_CT

    def __post_init__(self) -> None:
        for name in ("vd", "vs", "vt", "vd1", "vt1", "rt", "rm"):
            _check_reg(name, getattr(self, name))
        if not 0 <= self.offset < (1 << _OFFSET_BITS):
            raise ValueError(f"offset {self.offset} exceeds 20 bits")
        if not 0 <= self.value < 64:
            raise ValueError("VALUE field must fit 6 bits")
        if self.bfly_variant not in (BFLY_CT, BFLY_GS):
            raise ValueError("bfly_variant must be BFLY_CT or BFLY_GS")

    @property
    def instruction_class(self) -> InstructionClass:
        return self.opcode.instruction_class

    @property
    def mnemonic(self) -> str:
        if self.opcode is Opcode.BFLY:
            return "bflyct" if self.bfly_variant == BFLY_CT else "bflygs"
        return self.opcode.name.lower()

    def vector_sources(self) -> tuple[int, ...]:
        """Vector registers read (busyboard RAW tracking)."""
        op = self.opcode
        if op is Opcode.VSTORE:
            return (self.vd,)
        if op in (Opcode.VVADD, Opcode.VVSUB, Opcode.VVMUL):
            return (self.vs, self.vt)
        if op in (Opcode.VSADD, Opcode.VSSUB, Opcode.VSMUL):
            return (self.vs,)
        if op is Opcode.BFLY:
            return (self.vs, self.vt, self.vt1)
        if op in (Opcode.UNPKLO, Opcode.UNPKHI, Opcode.PKLO, Opcode.PKHI):
            return (self.vs, self.vt)
        return ()

    def vector_dests(self) -> tuple[int, ...]:
        """Vector registers written (busyboard WAW/RAW tracking)."""
        op = self.opcode
        if op in (Opcode.VLOAD, Opcode.VBCAST):
            return (self.vd,)
        if op in (
            Opcode.VVADD,
            Opcode.VVSUB,
            Opcode.VVMUL,
            Opcode.VSADD,
            Opcode.VSSUB,
            Opcode.VSMUL,
        ):
            return (self.vd,)
        if op is Opcode.BFLY:
            return (self.vd, self.vd1)
        if op in (Opcode.UNPKLO, Opcode.UNPKHI, Opcode.PKLO, Opcode.PKHI):
            return (self.vd,)
        return ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        from repro.isa.assembler import format_instruction

        return format_instruction(self)


# ---------------------------------------------------------------------------
# Builder functions (the public assembly surface).
# ---------------------------------------------------------------------------


def vload(
    vd: int,
    rm: int,
    offset: int = 0,
    mode: AddressMode = AddressMode.LINEAR,
    value: int = 0,
) -> Instruction:
    """Load 512 elements from VDM[ARF[rm] + offset ...] into VRF[vd]."""
    return Instruction(
        Opcode.VLOAD, vd=vd, rm=rm, offset=offset, mode=mode, value=value
    )


def vstore(
    vd: int,
    rm: int,
    offset: int = 0,
    mode: AddressMode = AddressMode.LINEAR,
    value: int = 0,
) -> Instruction:
    """Store VRF[vd] to VDM[ARF[rm] + offset ...] (vd is the *source*)."""
    return Instruction(
        Opcode.VSTORE, vd=vd, rm=rm, offset=offset, mode=mode, value=value
    )


def sload(rt: int, rm: int, offset: int = 0) -> Instruction:
    """Load one SDM word into SRF[rt]."""
    return Instruction(Opcode.SLOAD, rt=rt, rm=rm, offset=offset)


def vbcast(vd: int, rm: int, offset: int = 0) -> Instruction:
    """Broadcast one SDM word across all lanes of VRF[vd]."""
    return Instruction(Opcode.VBCAST, vd=vd, rm=rm, offset=offset)


def vvadd(vd: int, vs: int, vt: int, rm: int) -> Instruction:
    """VRF[vd] = VRF[vs] + VRF[vt] mod MRF[rm], lanewise."""
    return Instruction(Opcode.VVADD, vd=vd, vs=vs, vt=vt, rm=rm)


def vvsub(vd: int, vs: int, vt: int, rm: int) -> Instruction:
    """VRF[vd] = VRF[vs] - VRF[vt] mod MRF[rm], lanewise."""
    return Instruction(Opcode.VVSUB, vd=vd, vs=vs, vt=vt, rm=rm)


def vvmul(vd: int, vs: int, vt: int, rm: int) -> Instruction:
    """VRF[vd] = VRF[vs] * VRF[vt] mod MRF[rm], lanewise."""
    return Instruction(Opcode.VVMUL, vd=vd, vs=vs, vt=vt, rm=rm)


def vsadd(vd: int, vs: int, rt: int, rm: int) -> Instruction:
    """VRF[vd] = VRF[vs] + SRF[rt] mod MRF[rm]."""
    return Instruction(Opcode.VSADD, vd=vd, vs=vs, rt=rt, rm=rm)


def vssub(vd: int, vs: int, rt: int, rm: int) -> Instruction:
    """VRF[vd] = VRF[vs] - SRF[rt] mod MRF[rm]."""
    return Instruction(Opcode.VSSUB, vd=vd, vs=vs, rt=rt, rm=rm)


def vsmul(vd: int, vs: int, rt: int, rm: int) -> Instruction:
    """VRF[vd] = VRF[vs] * SRF[rt] mod MRF[rm]."""
    return Instruction(Opcode.VSMUL, vd=vd, vs=vs, rt=rt, rm=rm)


def bflyct(vd: int, vd1: int, vs: int, vt: int, vt1: int, rm: int) -> Instruction:
    """Cooley-Tukey butterfly:

    VRF[vd]  = VRF[vs] + VRF[vt]*VRF[vt1] mod MRF[rm]
    VRF[vd1] = VRF[vs] - VRF[vt]*VRF[vt1] mod MRF[rm]
    """
    return Instruction(
        Opcode.BFLY, vd=vd, vd1=vd1, vs=vs, vt=vt, vt1=vt1, rm=rm,
        bfly_variant=BFLY_CT,
    )


def bflygs(vd: int, vd1: int, vs: int, vt: int, vt1: int, rm: int) -> Instruction:
    """Gentleman-Sande butterfly:

    VRF[vd]  = VRF[vs] + VRF[vt] mod MRF[rm]
    VRF[vd1] = (VRF[vs] - VRF[vt]) * VRF[vt1] mod MRF[rm]
    """
    return Instruction(
        Opcode.BFLY, vd=vd, vd1=vd1, vs=vs, vt=vt, vt1=vt1, rm=rm,
        bfly_variant=BFLY_GS,
    )


def unpklo(vd: int, vs: int, vt: int) -> Instruction:
    """Interleave the first halves of VRF[vs] and VRF[vt] into VRF[vd]."""
    return Instruction(Opcode.UNPKLO, vd=vd, vs=vs, vt=vt)


def unpkhi(vd: int, vs: int, vt: int) -> Instruction:
    """Interleave the second halves of VRF[vs] and VRF[vt] into VRF[vd]."""
    return Instruction(Opcode.UNPKHI, vd=vd, vs=vs, vt=vt)


def pklo(vd: int, vs: int, vt: int) -> Instruction:
    """Even-indexed lanes of VRF[vs] then of VRF[vt] into VRF[vd]."""
    return Instruction(Opcode.PKLO, vd=vd, vs=vs, vt=vt)


def pkhi(vd: int, vs: int, vt: int) -> Instruction:
    """Odd-indexed lanes of VRF[vs] then of VRF[vt] into VRF[vd]."""
    return Instruction(Opcode.PKHI, vd=vd, vs=vs, vt=vt)


def halt() -> Instruction:
    """End of kernel; the front-end stops fetching."""
    return Instruction(Opcode.HALT)
