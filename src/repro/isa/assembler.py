"""Textual assembler / disassembler for B512.

The syntax mirrors the SPIRAL-generated C intrinsics of the paper's
Listing 1, but in assembly form::

    vload    v60, a1, 0, linear, 0
    vbcast   v19, a3, 1
    bflyct   v58, v57, v60, v59, v19, m1
    unpklo   v56, v58, v57
    vstore   v21, a2, 16, strided, 1
    halt

Register operands are written ``v<n>`` (vector), ``s<n>`` (scalar),
``a<n>`` (address), ``m<n>`` (modulus).  Comments start with ``#`` or
``//``; blank lines are ignored.
"""

from __future__ import annotations

from repro.isa.addressing import AddressMode
from repro.isa.instructions import (
    BFLY_CT,
    Instruction,
    bflyct,
    bflygs,
    halt,
    pkhi,
    pklo,
    sload,
    unpkhi,
    unpklo,
    vbcast,
    vload,
    vsadd,
    vsmul,
    vssub,
    vstore,
    vvadd,
    vvmul,
    vvsub,
)
from repro.isa.opcodes import Opcode

_MODE_NAMES = {m.name.lower(): m for m in AddressMode}


class AssemblyError(ValueError):
    """Raised on malformed assembly text, with a line number."""


def _reg(token: str, prefix: str, line_no: int) -> int:
    token = token.strip().rstrip(",")
    if not token.startswith(prefix) or not token[len(prefix) :].isdigit():
        raise AssemblyError(
            f"line {line_no}: expected {prefix}-register, got {token!r}"
        )
    return int(token[len(prefix) :])


def _int(token: str, line_no: int) -> int:
    token = token.strip().rstrip(",")
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"line {line_no}: expected integer, got {token!r}") from exc


def _mode(token: str, line_no: int) -> AddressMode:
    token = token.strip().rstrip(",").lower()
    if token not in _MODE_NAMES:
        raise AssemblyError(f"line {line_no}: unknown addressing mode {token!r}")
    return _MODE_NAMES[token]


def parse_line(line: str, line_no: int = 0) -> Instruction | None:
    """Parse one line of assembly; returns None for blanks/comments."""
    text = line.split("#", 1)[0].split("//", 1)[0].strip()
    if not text:
        return None
    parts = text.replace(",", " ").split()
    op, args = parts[0].lower(), parts[1:]

    def need(count: int) -> None:
        if len(args) != count:
            raise AssemblyError(
                f"line {line_no}: {op} expects {count} operands, got {len(args)}"
            )

    if op == "halt":
        need(0)
        return halt()
    if op in ("vload", "vstore"):
        if len(args) not in (3, 5):
            raise AssemblyError(f"line {line_no}: {op} expects 3 or 5 operands")
        vd = _reg(args[0], "v", line_no)
        rm = _reg(args[1], "a", line_no)
        offset = _int(args[2], line_no)
        mode = _mode(args[3], line_no) if len(args) == 5 else AddressMode.LINEAR
        value = _int(args[4], line_no) if len(args) == 5 else 0
        maker = vload if op == "vload" else vstore
        return maker(vd, rm, offset, mode, value)
    if op == "sload":
        need(3)
        return sload(
            _reg(args[0], "s", line_no),
            _reg(args[1], "a", line_no),
            _int(args[2], line_no),
        )
    if op == "vbcast":
        need(3)
        return vbcast(
            _reg(args[0], "v", line_no),
            _reg(args[1], "a", line_no),
            _int(args[2], line_no),
        )
    if op in ("vvadd", "vvsub", "vvmul"):
        need(4)
        maker = {"vvadd": vvadd, "vvsub": vvsub, "vvmul": vvmul}[op]
        return maker(
            _reg(args[0], "v", line_no),
            _reg(args[1], "v", line_no),
            _reg(args[2], "v", line_no),
            _reg(args[3], "m", line_no),
        )
    if op in ("vsadd", "vssub", "vsmul"):
        need(4)
        maker = {"vsadd": vsadd, "vssub": vssub, "vsmul": vsmul}[op]
        return maker(
            _reg(args[0], "v", line_no),
            _reg(args[1], "v", line_no),
            _reg(args[2], "s", line_no),
            _reg(args[3], "m", line_no),
        )
    if op in ("bflyct", "bflygs"):
        need(6)
        maker = bflyct if op == "bflyct" else bflygs
        return maker(
            _reg(args[0], "v", line_no),
            _reg(args[1], "v", line_no),
            _reg(args[2], "v", line_no),
            _reg(args[3], "v", line_no),
            _reg(args[4], "v", line_no),
            _reg(args[5], "m", line_no),
        )
    if op in ("unpklo", "unpkhi", "pklo", "pkhi"):
        need(3)
        maker = {"unpklo": unpklo, "unpkhi": unpkhi, "pklo": pklo, "pkhi": pkhi}[op]
        return maker(
            _reg(args[0], "v", line_no),
            _reg(args[1], "v", line_no),
            _reg(args[2], "v", line_no),
        )
    raise AssemblyError(f"line {line_no}: unknown mnemonic {op!r}")


def assemble(text: str) -> list[Instruction]:
    """Assemble a multi-line program."""
    out = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        inst = parse_line(line, line_no)
        if inst is not None:
            out.append(inst)
    return out


def format_instruction(inst: Instruction) -> str:
    """Disassemble one instruction to canonical text."""
    op = inst.opcode
    if op is Opcode.HALT:
        return "halt"
    if op in (Opcode.VLOAD, Opcode.VSTORE):
        return (
            f"{op.name.lower():<8}v{inst.vd}, a{inst.rm}, {inst.offset}, "
            f"{inst.mode.name.lower()}, {inst.value}"
        )
    if op is Opcode.SLOAD:
        return f"sload   s{inst.rt}, a{inst.rm}, {inst.offset}"
    if op is Opcode.VBCAST:
        return f"vbcast  v{inst.vd}, a{inst.rm}, {inst.offset}"
    if op.is_vector_scalar:
        return (
            f"{op.name.lower():<8}v{inst.vd}, v{inst.vs}, s{inst.rt}, m{inst.rm}"
        )
    if op is Opcode.BFLY:
        name = "bflyct" if inst.bfly_variant == BFLY_CT else "bflygs"
        return (
            f"{name:<8}v{inst.vd}, v{inst.vd1}, v{inst.vs}, v{inst.vt}, "
            f"v{inst.vt1}, m{inst.rm}"
        )
    if op in (Opcode.VVADD, Opcode.VVSUB, Opcode.VVMUL):
        return f"{op.name.lower():<8}v{inst.vd}, v{inst.vs}, v{inst.vt}, m{inst.rm}"
    # Shuffles.
    return f"{op.name.lower():<8}v{inst.vd}, v{inst.vs}, v{inst.vt}"


def disassemble(instructions: list[Instruction]) -> str:
    """Disassemble a whole kernel to text that re-assembles identically."""
    return "\n".join(format_instruction(i) for i in instructions)
