"""B512: the paper's 17-instruction vector ISA for ring processing.

The ISA has 64-bit instructions (Table I of the paper), a vector length of
512, four register files of 64 entries each (vector, scalar, address,
modulus), and three instruction classes executed by the RPU's three
decoupled pipelines:

* **LSI** -- load/store: ``VLOAD``/``VSTORE`` with four addressing modes
  (LINEAR, STRIDED, STRIDED_SKIP, REPEATED), ``SLOAD`` for scalars and
  ``VBCAST`` to replicate a scalar-memory word across a vector register.
* **CI** -- compute: vector-vector and vector-scalar modular add, subtract
  and multiply, plus the fused butterfly (``BFLY`` with a CT/GS variant bit).
* **SI** -- shuffle: ``UNPKLO``/``UNPKHI``/``PKLO``/``PKHI`` register-register
  vector breaking, the B512 analogue of x86 pack/unpack.

This package provides the instruction model, the bit-exact 64-bit
encoder/decoder, a textual assembler/disassembler, and the
:class:`~repro.isa.program.Program` container consumed by both the
functional (:mod:`repro.femu`) and cycle-level (:mod:`repro.perf`)
simulators.
"""

from repro.isa.addressing import AddressMode, element_addresses
from repro.isa.encoding import decode_instruction, encode_instruction
from repro.isa.instructions import (
    Instruction,
    InstructionClass,
    bflyct,
    bflygs,
    halt,
    pkhi,
    pklo,
    sload,
    unpkhi,
    unpklo,
    vbcast,
    vload,
    vsadd,
    vsmul,
    vssub,
    vstore,
    vvadd,
    vvmul,
    vvsub,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import DataSegment, Program, RegionSpec

__all__ = [
    "AddressMode",
    "element_addresses",
    "Opcode",
    "Instruction",
    "InstructionClass",
    "Program",
    "DataSegment",
    "RegionSpec",
    "encode_instruction",
    "decode_instruction",
    "vload",
    "vstore",
    "sload",
    "vbcast",
    "vvadd",
    "vvsub",
    "vvmul",
    "vsadd",
    "vssub",
    "vsmul",
    "bflyct",
    "bflygs",
    "unpklo",
    "unpkhi",
    "pklo",
    "pkhi",
    "halt",
]

VLEN = 512
"""Architectural vector length (elements per vector register)."""

NUM_VREGS = 64
NUM_SREGS = 64
NUM_AREGS = 64
NUM_MREGS = 64

VDM_MAX_BYTES = 32 * 1024 * 1024
"""Maximum vector data memory the ISA can address (32 MiB)."""

SDM_MAX_BYTES = 16 * 1024 * 1024
"""Maximum scalar data memory (16 MiB)."""

ELEMENT_BYTES = 16
"""128-bit data type: 16 bytes per element."""
