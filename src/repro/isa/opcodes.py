"""B512 opcodes and instruction classes.

The paper fixes the ISA at 17 instructions with a 4-bit opcode field and a
dedicated butterfly bit (Table I).  We realize that as 16 opcode values where
the ``BFLY`` opcode's variant bit selects Cooley-Tukey or Gentleman-Sande,
giving exactly 17 architecturally distinct instructions.
"""

from __future__ import annotations

import enum


class InstructionClass(enum.Enum):
    """Which decoupled pipeline executes the instruction (section IV-A)."""

    LSI = "load/store"
    CI = "compute"
    SI = "shuffle"
    CTRL = "control"


class Opcode(enum.IntEnum):
    """4-bit opcode values, grouped by instruction class."""

    HALT = 0
    # --- Load/store instructions (LSI) ---
    VLOAD = 1
    VSTORE = 2
    SLOAD = 3
    VBCAST = 4
    # --- Compute instructions (CI) ---
    VVADD = 5
    VVSUB = 6
    VVMUL = 7
    VSADD = 8
    VSSUB = 9
    VSMUL = 10
    BFLY = 11
    # --- Shuffle instructions (SI) ---
    UNPKLO = 12
    UNPKHI = 13
    PKLO = 14
    PKHI = 15

    @property
    def instruction_class(self) -> InstructionClass:
        return _CLASS_OF[self]

    @property
    def is_vector_scalar(self) -> bool:
        """True for CIs whose second operand comes from the SRF."""
        return self in (Opcode.VSADD, Opcode.VSSUB, Opcode.VSMUL)

    @property
    def uses_multiplier(self) -> bool:
        """True when the LAW modular multiplier is on the critical path."""
        return self in (Opcode.VVMUL, Opcode.VSMUL, Opcode.BFLY)


_CLASS_OF = {
    Opcode.HALT: InstructionClass.CTRL,
    Opcode.VLOAD: InstructionClass.LSI,
    Opcode.VSTORE: InstructionClass.LSI,
    Opcode.SLOAD: InstructionClass.LSI,
    Opcode.VBCAST: InstructionClass.LSI,
    Opcode.VVADD: InstructionClass.CI,
    Opcode.VVSUB: InstructionClass.CI,
    Opcode.VVMUL: InstructionClass.CI,
    Opcode.VSADD: InstructionClass.CI,
    Opcode.VSSUB: InstructionClass.CI,
    Opcode.VSMUL: InstructionClass.CI,
    Opcode.BFLY: InstructionClass.CI,
    Opcode.UNPKLO: InstructionClass.SI,
    Opcode.UNPKHI: InstructionClass.SI,
    Opcode.PKLO: InstructionClass.SI,
    Opcode.PKHI: InstructionClass.SI,
}

ALL_MNEMONICS = 17
"""Architecturally distinct instructions: 15 non-BFLY opcodes + BFLYCT/BFLYGS."""
