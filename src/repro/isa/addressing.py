"""The four vector load/store addressing modes of B512.

Table I encodes MODE and VALUE fields that together implement four patterns;
the paper highlights STRIDED_SKIP and REPEATED as the modes that make NTT
data movement efficient.  Addresses are in *elements* (128-bit words).
"""

from __future__ import annotations

import enum

import numpy as np


class AddressMode(enum.IntEnum):
    """MODE field values."""

    LINEAR = 0
    STRIDED = 1
    STRIDED_SKIP = 2
    REPEATED = 3


def element_addresses(
    mode: AddressMode, value: int, base: int, vlen: int
) -> list[int]:
    """Element addresses touched by a vector load/store.

    Args:
        mode: one of the four addressing modes.
        value: the VALUE field; strides and block sizes are ``2**value``.
        base: effective base element address (ARF[RM] + instruction offset).
        vlen: vector length (512 architecturally; smaller in unit tests).

    Returns:
        ``vlen`` element indices, in lane order.

    Mode semantics for lane ``j`` with ``v = 2**value``:

    * LINEAR:        ``base + j``
    * STRIDED:       ``base + j*v``          (gather/scatter with stride v)
    * STRIDED_SKIP:  ``base + (j // v)*2v + (j % v)``  — transfer ``v``
      consecutive elements, skip the next ``v``, repeat (the paper's
      "transferring each 2^VALUE and skipping other 2^VALUE").
    * REPEATED:      ``base + (j % v)``      (replicate a v-element block)
    """
    if value < 0 or value > 63:
        raise ValueError("VALUE field must be in [0, 63]")
    v = 1 << value
    if mode == AddressMode.LINEAR:
        return [base + j for j in range(vlen)]
    if mode == AddressMode.STRIDED:
        return [base + j * v for j in range(vlen)]
    if mode == AddressMode.STRIDED_SKIP:
        return [base + (j // v) * 2 * v + (j % v) for j in range(vlen)]
    if mode == AddressMode.REPEATED:
        return [base + (j % v) for j in range(vlen)]
    raise ValueError(f"unknown addressing mode {mode}")


def element_addresses_array(
    mode: AddressMode, value: int, base: int, vlen: int
) -> np.ndarray:
    """Numpy form of :func:`element_addresses` (same modes, same lanes).

    Used by the vectorized FEMU backend; since ``v`` is a power of two the
    div/mod of the scalar formulas become shifts/masks over one ``arange``.
    Kept in this module, next to the scalar definition, so the two address
    generators cannot drift apart unnoticed (the differential tests compare
    them through full kernel runs in every mode).

    Extreme VALUE/base fields whose addresses could wrap int64 fall back to
    the exact scalar formulas and return object (Python-int) lanes -- never
    silently wrapped addresses.
    """
    if value < 0 or value > 63:
        raise ValueError("VALUE field must be in [0, 63]")
    if value + max((vlen - 1).bit_length(), 1) >= 62 or abs(base) >= 1 << 61:
        return np.array(
            element_addresses(mode, value, base, vlen), dtype=object
        )
    v = 1 << value
    lanes = np.arange(vlen, dtype=np.int64)
    if mode == AddressMode.LINEAR:
        return base + lanes
    if mode == AddressMode.STRIDED:
        return base + lanes * v
    if mode == AddressMode.STRIDED_SKIP:
        return base + (lanes >> value) * 2 * v + (lanes & (v - 1))
    if mode == AddressMode.REPEATED:
        return base + (lanes & (v - 1))
    raise ValueError(f"unknown addressing mode {mode}")
