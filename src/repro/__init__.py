"""repro: a full reproduction of "RPU: The Ring Processing Unit" (ISPASS 2023).

The package re-implements, from scratch and in Python, every system the paper
describes or depends on:

* :mod:`repro.isa` -- the B512 vector ISA (encoding, assembler, programs).
* :mod:`repro.femu` -- a functional simulator executing B512 programs.
* :mod:`repro.perf` -- the configurable cycle-level RPU simulator.
* :mod:`repro.spiral` -- a SPIRAL-style backend generating optimized NTT
  kernels for the RPU.
* :mod:`repro.compile` -- the unified compiler: canonical
  :class:`~repro.compile.KernelSpec`\\ s, the uniform pass pipeline
  (incl. cross-kernel fusion), and the process-wide content-addressed
  plan cache every generator entry point shares.
* :mod:`repro.modmath`, :mod:`repro.ntt`, :mod:`repro.rns`,
  :mod:`repro.rlwe` -- the ring-processing substrates (modular arithmetic,
  reference NTTs, residue number system, RLWE-based workloads).
* :mod:`repro.hw` -- calibrated area / frequency / energy / HBM / CPU / F1
  models used for the paper's evaluation figures.
* :mod:`repro.eval` -- one driver per paper table and figure.
* :mod:`repro.core` -- the :class:`~repro.core.rpu.Rpu` facade tying it all
  together.

Quickstart::

    from repro import Rpu, RpuConfig
    from repro.spiral import generate_ntt_program

    program = generate_ntt_program(4096)
    rpu = Rpu(RpuConfig(num_hples=128, vdm_banks=128))
    result = rpu.run(program, verify=True)
    print(result.cycles, result.runtime_us)
"""

__all__ = ["Rpu", "RpuRunResult", "RpuConfig"]

__version__ = "1.0.0"


def __getattr__(name: str):
    """Lazy top-level re-exports so subpackages stay independently importable."""
    if name in ("Rpu", "RpuRunResult"):
        from repro.core.rpu import Rpu, RpuRunResult

        return {"Rpu": Rpu, "RpuRunResult": RpuRunResult}[name]
    if name == "RpuConfig":
        from repro.perf.config import RpuConfig

        return RpuConfig
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
