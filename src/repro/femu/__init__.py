"""Functional B512 simulator.

Plays the role of the paper's C++ functional simulator: executes a
:class:`~repro.isa.program.Program` instruction-by-instruction over explicit
VDM/SDM/VRF/SRF/ARF/MRF state and produces the final memory image, which the
test-suite compares against the reference NTT (the paper compared against
OpenFHE outputs).
"""

from repro.femu.executor import FunctionalSimulator, SimulationFault
from repro.femu.state import MachineState

__all__ = ["FunctionalSimulator", "MachineState", "SimulationFault"]
