"""Functional B512 simulation: two bit-exact backends, one contract.

Plays the role of the paper's C++ functional simulator: executes a
:class:`~repro.isa.program.Program` over explicit VDM/SDM/VRF/SRF/ARF/MRF
state and produces the final memory image, which the test-suite compares
against the reference NTT (the paper compared against OpenFHE outputs).

Two backends interpret the same programs:

* ``scalar`` -- :class:`FunctionalSimulator`: one Python loop per
  instruction, one arbitrary-precision int per lane.  The reference
  implementation; simplest to read and to trust.
* ``vectorized`` -- :class:`VectorizedSimulator` / :class:`BatchExecutor`:
  numpy arrays per register, one array expression per instruction.
  :class:`BatchExecutor` additionally runs B independent inputs (an RNS
  tower, or B user requests) through one instruction stream in a single
  pass.

**Equivalence contract.** Both backends share one semantics table
(:mod:`repro.femu.semantics`) -- the arithmetic expressions, shuffle
permutations, fault messages and stats accounting are defined exactly
once -- and ``tests/test_vectorized_femu.py`` proves them bit-exact
(element-for-element outputs, identical :class:`ExecutionStats`, identical
faults) on every generated kernel shape.  Stats count one program pass
regardless of batch width.

**When to use which.** Use ``scalar`` when debugging kernels or semantics
(stepping, inspecting ``MachineState``) and in differential tests as the
oracle.  Use ``vectorized`` for anything throughput-bound: fig-level
sweeps, the HE pipeline, fuzzing, serving many requests -- sub-31-bit
moduli run on plain int64 lanes and the paper's 128-bit moduli on
multi-limb int64 planes (:mod:`repro.modmath.limb`); there is no
object-dtype fallback, and ``BatchExecutor.dtype_path`` reports which
representation a program got.  ``make_simulator`` is the switchboard the
eval drivers and benchmarks use.

To scale a batch beyond one process, :mod:`repro.serve` shards
``BatchExecutor`` batches across workers
(:class:`~repro.serve.sharding.ShardedBatchExecutor`, bit-identical for
every shard count) and fronts them with an asyncio request-coalescing
loop (:class:`~repro.serve.loop.RpuServer`).
"""

from repro.femu.executor import FunctionalSimulator
from repro.femu.semantics import ExecutionStats, SimulationFault
from repro.femu.state import MachineState
from repro.femu.vectorized import BatchExecutor, VectorizedSimulator
from repro.isa.program import Program

FEMU_BACKENDS = ("scalar", "vectorized")
"""Backend names accepted by :func:`make_simulator` and eval drivers."""


def make_simulator(
    program: Program, backend: str = "scalar", vdm_size: int | None = None
):
    """Instantiate a functional simulator for ``program``.

    Args:
        program: the kernel to execute.
        backend: ``"scalar"`` (reference interpreter) or ``"vectorized"``
            (numpy engine); see the module docstring for the trade-off.
        vdm_size: optional VDM size override, forwarded to the backend.
    """
    if backend == "scalar":
        return FunctionalSimulator(program, vdm_size=vdm_size)
    if backend == "vectorized":
        return VectorizedSimulator(program, vdm_size=vdm_size)
    raise ValueError(
        f"unknown FEMU backend {backend!r}; expected one of {FEMU_BACKENDS}"
    )


__all__ = [
    "BatchExecutor",
    "ExecutionStats",
    "FEMU_BACKENDS",
    "FunctionalSimulator",
    "MachineState",
    "SimulationFault",
    "VectorizedSimulator",
    "make_simulator",
]
