"""Architectural state of a B512 machine.

All four register files and both data memories, with bounds checking on
every access.  Element width is arbitrary-precision here (Python ints); the
128-bit datapath limit is enforced by the modulus checks in the executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.femu.semantics import sdm_bounds_error, vdm_bounds_error

NUM_REGS = 64


@dataclass
class MachineState:
    """VDM, SDM and the four register files.

    Attributes:
        vlen: elements per vector register.
        vdm_size: vector data memory size in elements (128-bit words).
        sdm_size: scalar data memory size in words.
    """

    vlen: int = 512
    vdm_size: int = 262_144  # 4 MiB of 16-byte words, the instantiated VDM
    sdm_size: int = 2_048  # 32 KiB of 16-byte words
    vdm: list[int] = field(init=False)
    sdm: list[int] = field(init=False)
    vrf: list[list[int]] = field(init=False)
    srf: list[int] = field(init=False)
    arf: list[int] = field(init=False)
    mrf: list[int] = field(init=False)

    def __post_init__(self) -> None:
        if self.vlen < 2 or self.vlen % 2 != 0:
            raise ValueError("vlen must be an even integer >= 2")
        self.vdm = [0] * self.vdm_size
        self.sdm = [0] * self.sdm_size
        self.vrf = [[0] * self.vlen for _ in range(NUM_REGS)]
        self.srf = [0] * NUM_REGS
        self.arf = [0] * NUM_REGS
        self.mrf = [0] * NUM_REGS

    def read_vdm(self, addresses: list[int]) -> list[int]:
        """Gather elements; raises IndexError outside the memory."""
        size = self.vdm_size
        for a in addresses:
            if not 0 <= a < size:
                raise vdm_bounds_error(a, size)
        vdm = self.vdm
        return [vdm[a] for a in addresses]

    def write_vdm(self, addresses: list[int], values: list[int]) -> None:
        """Scatter elements; raises IndexError outside the memory."""
        size = self.vdm_size
        for a in addresses:
            if not 0 <= a < size:
                raise vdm_bounds_error(a, size)
        vdm = self.vdm
        for a, v in zip(addresses, values):
            vdm[a] = v

    def read_sdm(self, address: int) -> int:
        if not 0 <= address < self.sdm_size:
            raise sdm_bounds_error(address, self.sdm_size)
        return self.sdm[address]
