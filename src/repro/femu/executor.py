"""The scalar functional executor: bit-accurate B512 semantics.

Every SPIRAL-generated kernel runs through here before any performance
number is reported, mirroring the paper's methodology ("all codes generated
by SPIRAL run through the functional simulator and match OpenFHE's
output").

This is the *reference* backend: one Python loop per instruction, one
arbitrary-precision int per lane.  The instruction semantics themselves
live in :mod:`repro.femu.semantics`, shared with the throughput-oriented
numpy backend in :mod:`repro.femu.vectorized`; the differential tests prove
the two bit-exact on every kernel shape.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.femu.semantics import (
    VS_EXPR,
    VV_EXPR,
    ExecutionStats,
    SimulationFault,
    apply_launch_state,
    bfly,
    count_instruction,
    noncanonical_scalar_fault,
    noncanonical_vector_fault,
    require_modulus,
    resolve_sdm_size,
    resolve_vdm_size,
    shuffle_permutation,
)
from repro.femu.state import MachineState
from repro.isa.addressing import element_addresses
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program, RegionSpec

__all__ = ["ExecutionStats", "FunctionalSimulator", "SimulationFault"]


class FunctionalSimulator:
    """Executes a :class:`Program` over a fresh :class:`MachineState`.

    Usage::

        sim = FunctionalSimulator(program)
        sim.write_region(program.input_region, coefficients)
        sim.run()
        out = sim.read_region(program.output_region)
    """

    def __init__(self, program: Program, vdm_size: int | None = None) -> None:
        self.program = program
        self.state = MachineState(
            vlen=program.vlen,
            vdm_size=resolve_vdm_size(program, vdm_size),
            sdm_size=resolve_sdm_size(program),
        )
        self.stats = ExecutionStats()
        apply_launch_state(
            program,
            lambda seg: self.state.write_vdm(
                list(range(seg.base, seg.end)), list(seg.values)
            ),
            self.state.sdm,
            self.state.arf,
            self.state.mrf,
            self.state.srf,
        )

    def write_region(self, region: RegionSpec | None, values: Sequence[int]) -> None:
        """Place caller data into a VDM region before running."""
        if region is None:
            raise ValueError("program has no such region")
        if len(values) != region.length:
            raise ValueError(
                f"region {region.name!r} holds {region.length} elements, "
                f"got {len(values)}"
            )
        self.state.write_vdm(
            list(range(region.base, region.base + region.length)), list(values)
        )

    def read_region(self, region: RegionSpec | None) -> list[int]:
        """Read a VDM region after running."""
        if region is None:
            raise ValueError("program has no such region")
        return self.state.read_vdm(
            list(range(region.base, region.base + region.length))
        )

    # -- execution ---------------------------------------------------------
    def run(self) -> ExecutionStats:
        """Execute until HALT (or the end of the instruction list)."""
        for inst in self.program.instructions:
            if inst.opcode is Opcode.HALT:
                break
            self._execute(inst)
        return self.stats

    def _modulus(self, inst: Instruction) -> int:
        return require_modulus(self.state.mrf[inst.rm], inst)

    def _check_canonical(self, reg: int, q: int) -> list[int]:
        values = self.state.vrf[reg]
        for v in values:
            if not 0 <= v < q:
                raise noncanonical_vector_fault(reg, v, q)
        return values

    def _execute(self, inst: Instruction) -> None:
        state = self.state
        op = inst.opcode
        count_instruction(self.stats, inst)

        if op is Opcode.VLOAD:
            base = state.arf[inst.rm] + inst.offset
            addrs = element_addresses(inst.mode, inst.value, base, state.vlen)
            state.vrf[inst.vd] = state.read_vdm(addrs)
            self.stats.vdm_reads += len(addrs)
        elif op is Opcode.VSTORE:
            base = state.arf[inst.rm] + inst.offset
            addrs = element_addresses(inst.mode, inst.value, base, state.vlen)
            state.write_vdm(addrs, state.vrf[inst.vd])
            self.stats.vdm_writes += len(addrs)
        elif op is Opcode.SLOAD:
            state.srf[inst.rt] = state.read_sdm(state.arf[inst.rm] + inst.offset)
        elif op is Opcode.VBCAST:
            word = state.read_sdm(state.arf[inst.rm] + inst.offset)
            state.vrf[inst.vd] = [word] * state.vlen
        elif op in VV_EXPR:
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            b = self._check_canonical(inst.vt, q)
            expr = VV_EXPR[op]
            state.vrf[inst.vd] = [expr(x, y, q) for x, y in zip(a, b)]
        elif op in VS_EXPR:
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            s = state.srf[inst.rt]
            if not 0 <= s < q:
                raise noncanonical_scalar_fault(inst.rt, s, q)
            expr = VS_EXPR[op]
            state.vrf[inst.vd] = [expr(x, s, q) for x in a]
        elif op is Opcode.BFLY:
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            b = self._check_canonical(inst.vt, q)
            w = self._check_canonical(inst.vt1, q)
            hi = [0] * state.vlen
            lo = [0] * state.vlen
            for i in range(state.vlen):
                hi[i], lo[i] = bfly(inst.bfly_variant, a[i], b[i], w[i], q)
            state.vrf[inst.vd] = hi
            state.vrf[inst.vd1] = lo
        elif op in (Opcode.UNPKLO, Opcode.UNPKHI, Opcode.PKLO, Opcode.PKHI):
            concat = state.vrf[inst.vs] + state.vrf[inst.vt]
            perm = shuffle_permutation(op, state.vlen)
            state.vrf[inst.vd] = [concat[p] for p in perm]
        else:  # pragma: no cover - HALT handled by run()
            raise SimulationFault(f"unexpected opcode {op}")
