"""The functional executor: bit-accurate B512 semantics.

Every SPIRAL-generated kernel runs through here before any performance
number is reported, mirroring the paper's methodology ("all codes generated
by SPIRAL run through the functional simulator and match OpenFHE's
output").
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.femu.state import MachineState
from repro.isa.addressing import element_addresses
from repro.isa.instructions import BFLY_CT, Instruction
from repro.isa.opcodes import InstructionClass, Opcode
from repro.isa.program import Program, RegionSpec


class SimulationFault(RuntimeError):
    """A kernel violated an architectural contract (bad modulus, range...)."""


@dataclass
class ExecutionStats:
    """Dynamic instruction statistics gathered during a functional run."""

    executed: int = 0
    by_class: dict[InstructionClass, int] = field(
        default_factory=lambda: {k: 0 for k in InstructionClass}
    )
    vdm_reads: int = 0
    vdm_writes: int = 0


class FunctionalSimulator:
    """Executes a :class:`Program` over a fresh :class:`MachineState`.

    Usage::

        sim = FunctionalSimulator(program)
        sim.write_region(program.input_region, coefficients)
        sim.run()
        out = sim.read_region(program.output_region)
    """

    def __init__(self, program: Program, vdm_size: int | None = None) -> None:
        self.program = program
        needed = program.vdm_words_needed
        size = vdm_size if vdm_size is not None else max(needed, 1)
        if size < needed:
            raise ValueError(
                f"VDM of {size} words cannot hold program needing {needed}"
            )
        sdm_needed = max(
            (seg.end for seg in program.sdm_segments), default=0
        )
        self.state = MachineState(
            vlen=program.vlen, vdm_size=size, sdm_size=max(sdm_needed, 2048)
        )
        self.stats = ExecutionStats()
        self._apply_launch_state()

    # -- launch-code duties (paper section V) -----------------------------
    def _apply_launch_state(self) -> None:
        for seg in self.program.vdm_segments:
            self.state.write_vdm(
                list(range(seg.base, seg.end)), list(seg.values)
            )
        for seg in self.program.sdm_segments:
            for i, v in enumerate(seg.values):
                self.state.sdm[seg.base + i] = v
        for idx, val in self.program.arf_init.items():
            self.state.arf[idx] = val
        for idx, val in self.program.mrf_init.items():
            self.state.mrf[idx] = val
        for idx, val in self.program.srf_init.items():
            self.state.srf[idx] = val

    def write_region(self, region: RegionSpec | None, values: Sequence[int]) -> None:
        """Place caller data into a VDM region before running."""
        if region is None:
            raise ValueError("program has no such region")
        if len(values) != region.length:
            raise ValueError(
                f"region {region.name!r} holds {region.length} elements, "
                f"got {len(values)}"
            )
        self.state.write_vdm(
            list(range(region.base, region.base + region.length)), list(values)
        )

    def read_region(self, region: RegionSpec | None) -> list[int]:
        """Read a VDM region after running."""
        if region is None:
            raise ValueError("program has no such region")
        return self.state.read_vdm(
            list(range(region.base, region.base + region.length))
        )

    # -- execution ---------------------------------------------------------
    def run(self) -> ExecutionStats:
        """Execute until HALT (or the end of the instruction list)."""
        for inst in self.program.instructions:
            if inst.opcode is Opcode.HALT:
                break
            self._execute(inst)
        return self.stats

    def _modulus(self, inst: Instruction) -> int:
        q = self.state.mrf[inst.rm]
        if q <= 1:
            raise SimulationFault(
                f"MRF[{inst.rm}] = {q} is not a usable modulus ({inst})"
            )
        return q

    def _check_canonical(self, reg: int, q: int) -> list[int]:
        values = self.state.vrf[reg]
        for v in values:
            if not 0 <= v < q:
                raise SimulationFault(
                    f"VRF[{reg}] holds non-canonical residue {v} for q={q}"
                )
        return values

    def _execute(self, inst: Instruction) -> None:
        state = self.state
        op = inst.opcode
        self.stats.executed += 1
        self.stats.by_class[inst.instruction_class] += 1

        if op is Opcode.VLOAD:
            base = state.arf[inst.rm] + inst.offset
            addrs = element_addresses(inst.mode, inst.value, base, state.vlen)
            state.vrf[inst.vd] = state.read_vdm(addrs)
            self.stats.vdm_reads += len(addrs)
        elif op is Opcode.VSTORE:
            base = state.arf[inst.rm] + inst.offset
            addrs = element_addresses(inst.mode, inst.value, base, state.vlen)
            state.write_vdm(addrs, state.vrf[inst.vd])
            self.stats.vdm_writes += len(addrs)
        elif op is Opcode.SLOAD:
            state.srf[inst.rt] = state.read_sdm(state.arf[inst.rm] + inst.offset)
        elif op is Opcode.VBCAST:
            word = state.read_sdm(state.arf[inst.rm] + inst.offset)
            state.vrf[inst.vd] = [word] * state.vlen
        elif op in (Opcode.VVADD, Opcode.VVSUB, Opcode.VVMUL):
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            b = self._check_canonical(inst.vt, q)
            if op is Opcode.VVADD:
                state.vrf[inst.vd] = [(x + y) % q for x, y in zip(a, b)]
            elif op is Opcode.VVSUB:
                state.vrf[inst.vd] = [(x - y) % q for x, y in zip(a, b)]
            else:
                state.vrf[inst.vd] = [x * y % q for x, y in zip(a, b)]
        elif op in (Opcode.VSADD, Opcode.VSSUB, Opcode.VSMUL):
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            s = state.srf[inst.rt]
            if not 0 <= s < q:
                raise SimulationFault(
                    f"SRF[{inst.rt}] = {s} is not canonical for q={q}"
                )
            if op is Opcode.VSADD:
                state.vrf[inst.vd] = [(x + s) % q for x in a]
            elif op is Opcode.VSSUB:
                state.vrf[inst.vd] = [(x - s) % q for x in a]
            else:
                state.vrf[inst.vd] = [x * s % q for x in a]
        elif op is Opcode.BFLY:
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            b = self._check_canonical(inst.vt, q)
            w = self._check_canonical(inst.vt1, q)
            if inst.bfly_variant == BFLY_CT:
                hi = [0] * state.vlen
                lo = [0] * state.vlen
                for i in range(state.vlen):
                    prod = b[i] * w[i] % q
                    hi[i] = (a[i] + prod) % q
                    lo[i] = (a[i] - prod) % q
            else:  # Gentleman-Sande
                hi = [0] * state.vlen
                lo = [0] * state.vlen
                for i in range(state.vlen):
                    hi[i] = (a[i] + b[i]) % q
                    lo[i] = (a[i] - b[i]) * w[i] % q
            state.vrf[inst.vd] = hi
            state.vrf[inst.vd1] = lo
        elif op in (Opcode.UNPKLO, Opcode.UNPKHI, Opcode.PKLO, Opcode.PKHI):
            a = state.vrf[inst.vs]
            b = state.vrf[inst.vt]
            half = state.vlen // 2
            out = [0] * state.vlen
            if op is Opcode.UNPKLO:
                for i in range(half):
                    out[2 * i] = a[i]
                    out[2 * i + 1] = b[i]
            elif op is Opcode.UNPKHI:
                for i in range(half):
                    out[2 * i] = a[half + i]
                    out[2 * i + 1] = b[half + i]
            elif op is Opcode.PKLO:
                for i in range(half):
                    out[i] = a[2 * i]
                    out[half + i] = b[2 * i]
            else:  # PKHI
                for i in range(half):
                    out[i] = a[2 * i + 1]
                    out[half + i] = b[2 * i + 1]
            state.vrf[inst.vd] = out
        else:  # pragma: no cover - HALT handled by run()
            raise SimulationFault(f"unexpected opcode {op}")
