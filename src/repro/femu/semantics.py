"""Backend-independent B512 instruction semantics.

Both FEMU backends -- the scalar interpreter
(:class:`~repro.femu.executor.FunctionalSimulator`) and the numpy batch
engine (:mod:`repro.femu.vectorized`) -- execute the same architectural
contract.  This module is that contract, factored out so the two
interpreters cannot drift: the arithmetic expressions, the shuffle
permutations, the fault messages and the statistics accounting all live
here, written polymorphically so one definition serves Python ints (scalar
lanes) and numpy arrays (whole vectors / batches) alike.

The differential suite in ``tests/test_vectorized_femu.py`` additionally
proves the two backends bit-exact on every generated kernel shape, but the
first line of defence is that there is only one place semantics are
defined.
"""

from __future__ import annotations

import functools
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.isa.instructions import BFLY_CT, Instruction
from repro.isa.opcodes import InstructionClass, Opcode


class SimulationFault(RuntimeError):
    """A kernel violated an architectural contract (bad modulus, range...)."""


@dataclass
class ExecutionStats:
    """Dynamic instruction statistics gathered during a functional run.

    Both backends produce identical stats for the same program: a
    :class:`~repro.femu.vectorized.BatchExecutor` pass counts each
    instruction once regardless of the batch width, exactly like one scalar
    run, so stats stay comparable across backends.  The same convention
    extends to the sharded executor (every shard runs the same program, so
    one pass is still one pass) and lets multi-kernel primitives report a
    single merged record: stats add field-by-field via ``+`` /
    :meth:`merge`, e.g. a polymul's cost is ``fwd + pointwise + inverse``.
    """

    executed: int = 0
    by_class: dict[InstructionClass, int] = field(
        default_factory=lambda: {k: 0 for k in InstructionClass}
    )
    vdm_reads: int = 0
    vdm_writes: int = 0
    # Which limb-kernel backend produced the pass's wide-modulus compute:
    # "native+ntt" (whole transform in one C call per tower), "native"
    # (compiled rows), "numpy" (array sweeps), "n/a" (int64-only
    # or scalar-interpreter passes -- no limb kernels involved), "mixed"
    # (merged record spanning both).  Informational: excluded from
    # equality so bit-exactness comparisons across backends still hold.
    native_path: str = field(default="n/a", compare=False)

    def copy(self) -> "ExecutionStats":
        """An independent copy (the ``by_class`` dict is not shared)."""
        return ExecutionStats(
            executed=self.executed,
            by_class=dict(self.by_class),
            vdm_reads=self.vdm_reads,
            vdm_writes=self.vdm_writes,
            native_path=self.native_path,
        )

    @staticmethod
    def _merge_native_path(a: str, b: str) -> str:
        if a == b:
            return a
        if a == "n/a":
            return b
        if b == "n/a":
            return a
        return "mixed"

    def __add__(self, other: "ExecutionStats") -> "ExecutionStats":
        if not isinstance(other, ExecutionStats):
            return NotImplemented
        by_class = {
            k: self.by_class.get(k, 0) + other.by_class.get(k, 0)
            for k in (*self.by_class, *other.by_class)
        }
        return ExecutionStats(
            executed=self.executed + other.executed,
            by_class=by_class,
            vdm_reads=self.vdm_reads + other.vdm_reads,
            vdm_writes=self.vdm_writes + other.vdm_writes,
            native_path=self._merge_native_path(
                self.native_path, other.native_path
            ),
        )

    def __radd__(self, other):
        # Lets ``sum(stats_list)`` start from the int 0.
        if other == 0:
            return self.copy()
        return NotImplemented

    @classmethod
    def merge(cls, stats: Iterable["ExecutionStats"]) -> "ExecutionStats":
        """Field-wise sum of several pass records (empty input is all-zero)."""
        total = cls()
        for s in stats:
            total = total + s
        return total


def count_instruction(stats: ExecutionStats, inst: Instruction) -> None:
    """Charge one dynamic instruction to the stats (shared by backends)."""
    stats.executed += 1
    stats.by_class[inst.instruction_class] += 1


# ---------------------------------------------------------------------------
# Compute semantics.
#
# Every expression below is polymorphic: ``a``/``b`` may be Python ints (one
# lane) or numpy int64/object arrays (a vector, or a whole batch).  For
# canonical residues ``0 <= x < q`` Python's ``%`` and numpy's ``%`` agree
# on every intermediate (including the negative dividends produced by
# subtraction), which is what makes the vectorized backend bit-exact.
# ---------------------------------------------------------------------------

VV_EXPR = {
    Opcode.VVADD: lambda a, b, q: (a + b) % q,
    Opcode.VVSUB: lambda a, b, q: (a - b) % q,
    Opcode.VVMUL: lambda a, b, q: a * b % q,
}
"""Vector-vector compute ops: lanewise ``a (op) b mod q``."""

VS_EXPR = {
    Opcode.VSADD: lambda a, s, q: (a + s) % q,
    Opcode.VSSUB: lambda a, s, q: (a - s) % q,
    Opcode.VSMUL: lambda a, s, q: a * s % q,
}
"""Vector-scalar compute ops: lanewise ``a (op) SRF[rt] mod q``."""


def bfly(variant: int, a, b, w, q):
    """Butterfly semantics; returns ``(hi, lo)``.

    Cooley-Tukey: ``hi = a + b*w``, ``lo = a - b*w`` (all mod q).
    Gentleman-Sande: ``hi = a + b``, ``lo = (a - b) * w`` (all mod q).
    """
    if variant == BFLY_CT:
        # The product stays unreduced: (a ± b*w) % q is identical to
        # (a ± (b*w % q)) % q, and for int64 lanes q < 2^31 keeps the
        # intermediate below 2^62, so one reduction pass is saved.
        prod = b * w
        return (a + prod) % q, (a - prod) % q
    return (a + b) % q, (a - b) * w % q


VV_LIMB = {
    Opcode.VVADD: lambda eng, a, b: eng.add_mod(a, b),
    Opcode.VVSUB: lambda eng, a, b: eng.sub_mod(a, b),
    Opcode.VVMUL: lambda eng, a, b: eng.mul_mod(a, b),
}
"""Vector-vector ops over multi-limb lanes (wide moduli on int64 arrays).

Same semantics as :data:`VV_EXPR`, expressed through a
:class:`repro.modmath.limb.LimbEngine`; the differential suite proves the
two representations bit-exact on every kernel shape.
"""

VS_LIMB = {
    Opcode.VSADD: lambda eng, a, s: eng.add_mod(a, s),
    Opcode.VSSUB: lambda eng, a, s: eng.sub_mod(a, s),
    Opcode.VSMUL: lambda eng, a, s: eng.mul_mod(a, s),
}
"""Vector-scalar limb ops: the broadcast scalar is pre-decomposed, so the
engine expressions coincide with the vector-vector ones."""


def bfly_limb(variant: int, engine, a, b, w):
    """Butterfly over multi-limb lanes; returns ``(hi, lo)``.

    Uses the identity ``(a ± b*w) % q == (a ± (b*w % q)) % q`` (already
    relied on by :func:`bfly`'s comment): reducing the product first keeps
    every engine operand canonical, which the add/sub paths require.
    """
    if variant == BFLY_CT:
        return engine.bfly_ct(a, b, w)
    return engine.add_mod(a, b), engine.mul_mod(engine.sub_mod(a, b), w)


SHUFFLE_OPS = (Opcode.UNPKLO, Opcode.UNPKHI, Opcode.PKLO, Opcode.PKHI)


@functools.lru_cache(maxsize=None)
def shuffle_permutation(op: Opcode, vlen: int) -> tuple[int, ...]:
    """Lane permutation of a shuffle, as indices into ``a ++ b``.

    The result ``perm`` satisfies ``out[j] = (a ++ b)[perm[j]]`` where
    ``a ++ b`` is the 2*vlen-element concatenation of the two source
    registers.  Expressing all four shuffles as one gather lets the scalar
    backend loop it and the vectorized backend fancy-index it from the same
    table.
    """
    half = vlen // 2
    perm = [0] * vlen
    if op is Opcode.UNPKLO:
        for i in range(half):
            perm[2 * i] = i
            perm[2 * i + 1] = vlen + i
    elif op is Opcode.UNPKHI:
        for i in range(half):
            perm[2 * i] = half + i
            perm[2 * i + 1] = vlen + half + i
    elif op is Opcode.PKLO:
        for i in range(half):
            perm[i] = 2 * i
            perm[half + i] = vlen + 2 * i
    elif op is Opcode.PKHI:
        for i in range(half):
            perm[i] = 2 * i + 1
            perm[half + i] = vlen + 2 * i + 1
    else:
        raise ValueError(f"{op} is not a shuffle opcode")
    return tuple(perm)


# ---------------------------------------------------------------------------
# Architectural checks and their (backend-identical) fault messages.
# ---------------------------------------------------------------------------


def require_modulus(q: int, inst: Instruction) -> int:
    """Validate MRF[rm] as a usable modulus; fault exactly like either backend."""
    if q <= 1:
        raise SimulationFault(
            f"MRF[{inst.rm}] = {q} is not a usable modulus ({inst})"
        )
    return q


def noncanonical_vector_fault(reg: int, value: int, q: int) -> SimulationFault:
    """Fault for a vector operand lane outside ``[0, q)``."""
    return SimulationFault(
        f"VRF[{reg}] holds non-canonical residue {value} for q={q}"
    )


def noncanonical_scalar_fault(rt: int, value: int, q: int) -> SimulationFault:
    """Fault for an SRF operand outside ``[0, q)``."""
    return SimulationFault(f"SRF[{rt}] = {value} is not canonical for q={q}")


def vdm_bounds_error(address: int, size: int) -> IndexError:
    """Out-of-memory access error, shared so messages match exactly."""
    return IndexError(f"VDM address {address} outside [0, {size})")


def sdm_bounds_error(address: int, size: int) -> IndexError:
    """Scalar-memory access error, shared so messages match exactly."""
    return IndexError(f"SDM address {address} outside [0, {size})")


def resolve_vdm_size(program, vdm_size: int | None) -> int:
    """Validate/derive the VDM allocation for a program (both backends)."""
    needed = program.vdm_words_needed
    size = vdm_size if vdm_size is not None else max(needed, 1)
    if size < needed:
        raise ValueError(
            f"VDM of {size} words cannot hold program needing {needed}"
        )
    return size


SDM_MIN_WORDS = 2_048
"""Default scalar-memory allocation (32 KiB of 16-byte words)."""


def resolve_sdm_size(program) -> int:
    """SDM allocation: the program's static footprint, floored at default."""
    needed = max((seg.end for seg in program.sdm_segments), default=0)
    return max(needed, SDM_MIN_WORDS)


def apply_launch_state(program, write_vdm_segment, sdm, arf, mrf, srf) -> None:
    """Launch-code duties (paper section V), shared by both backends.

    Materializes SDM segments and the ARF/MRF/SRF preloads directly into
    the given mutable sequences; VDM segments go through
    ``write_vdm_segment(segment)`` since the two backends store vector
    memory differently (flat list vs batched array).
    """
    for seg in program.vdm_segments:
        write_vdm_segment(seg)
    for seg in program.sdm_segments:
        for i, v in enumerate(seg.values):
            sdm[seg.base + i] = v
    for idx, val in program.arf_init.items():
        arf[idx] = val
    for idx, val in program.mrf_init.items():
        mrf[idx] = val
    for idx, val in program.srf_init.items():
        srf[idx] = val
