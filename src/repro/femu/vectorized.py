"""Numpy-backed FEMU backend: vectorized and batched functional execution.

:class:`BatchExecutor` interprets the same :class:`~repro.isa.program.Program`
objects as the scalar :class:`~repro.femu.executor.FunctionalSimulator`, but
holds each vector register and the VDM as batched numpy arrays, so

* each instruction's vlen-wide element loop becomes one array expression,
  and
* B independent inputs (an RNS tower's residue polynomials, or B user
  requests) flow through the instruction stream in a *single pass* -- the
  per-instruction decode/dispatch overhead is paid once, not B times.

:class:`VectorizedSimulator` is the batch-of-one facade with the exact
``write_region``/``run``/``read_region`` surface of the scalar simulator.

Element representation -- always C integer lanes, never object dtype:

* ``int64``: one lane per element, used when every program modulus stays
  below 2^31 (products of canonical residues fit a signed 64-bit lane).
* ``limb``: ``k`` 26-bit limb planes per element
  (:mod:`repro.modmath.limb`), used for the paper's 128-bit moduli and for
  any caller data too wide for an int64 lane.  State arrays grow a leading
  limb axis -- ``(k, batch, ...)`` -- which data movement (loads, stores,
  shuffles) carries along untouched while compute dispatches to a
  :class:`~repro.modmath.limb.LimbEngine`.

The active representation is visible as :attr:`BatchExecutor.dtype_path`
(``"int64"`` or ``"limb<k>x26"``); benchmarks report it so a silent change
of path shows up in the JSON.  Both paths are bit-exact with the scalar
backend -- the semantics come from the same shared table
(:mod:`repro.femu.semantics`), and ``tests/test_vectorized_femu.py``
proves equality element-for-element on every generated kernel shape.

Scalar machine state (SRF/ARF/MRF and the SDM) carries no batch axis: B512
has no scalar-store instruction, so scalar state depends only on the
program, never on the vector data, and is provably identical across batch
lanes.  This is also why vector load/store addresses can be computed once
per static instruction and cached: the ARF is launch-time constant.

A canonicality ledger removes redundant range checks: every compute result
is canonical for its instruction's modulus by construction, launch
segments are validated once per program (cached), and VSTOREs propagate
their register's verdict into a per-address VDM map -- so in steady state
only genuinely unknown data (fresh caller rows) pays a range scan, while
fault behaviour stays identical to the scalar backend (a flagged operand
provably cannot fault).

Nothing couples the batch lanes: lane ``b`` of every register and of the
VDM depends only on lane ``b`` of the caller's rows (scalar state is
batch-invariant, see above).  That makes the batch axis embarrassingly
parallel, which :mod:`repro.serve.sharding` exploits to cut one batch
across worker processes bit-identically.
"""

from __future__ import annotations

import functools
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.femu.semantics import (
    VS_EXPR,
    VS_LIMB,
    VV_EXPR,
    VV_LIMB,
    ExecutionStats,
    SimulationFault,
    apply_launch_state,
    bfly,
    bfly_limb,
    count_instruction,
    noncanonical_scalar_fault,
    noncanonical_vector_fault,
    require_modulus,
    resolve_sdm_size,
    resolve_vdm_size,
    sdm_bounds_error,
    vdm_bounds_error,
)
from repro.femu.state import NUM_REGS
from repro.isa.addressing import AddressMode, element_addresses_array
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program, RegionSpec
from repro.modmath import native
from repro.modmath.limb import (
    LIMB_BITS,
    LimbEngine,
    cached_engine,
    compose,
    decompose,
    limbs_for_bits,
    pack52,
    widen,
)
from repro.modmath.vectorized import INT64_MODULUS_LIMIT, fits_int64

__all__ = ["BatchExecutor", "VectorizedSimulator"]


def _limb_engine(q: int, k: int) -> LimbEngine:
    """Engines are pure constants + scratch; share them across executors."""
    return cached_engine(q, k)


@functools.lru_cache(maxsize=None)
def _segment_limbs(seg, k: int) -> np.ndarray:
    """Limb planes of a launch segment (static per program, so cached)."""
    return decompose(seg.values, k)


@functools.lru_cache(maxsize=None)
def _segment_canonical(seg, q: int) -> bool:
    """Whether a launch segment holds only canonical residues mod ``q``."""
    return all(0 <= v < q for v in seg.values)


class _NttPlan:
    """Host-side whole-transform plan for one generated NTT program.

    A compiled ``ntt``/``ntt_slice`` program is one complete transform:
    natural input region in, (bit-reversed) output region out, with the
    full twiddle table materialized as a launch segment and -- for the
    inverse -- the ``n^{-1}`` scale in the SDM.  That is exactly the
    contract of :meth:`repro.modmath.limb.LimbEngine.ntt`, so on the
    limb path the whole program collapses to one native call instead of
    an instruction-by-instruction interpretation.  The plan caches
    everything that is static per program: the direction-matched
    twiddle values (read straight from the program's own launch
    segment, so sliced spatial tables ride the same path), their limb
    decompositions per representation width, and the stats template of
    one interpreted pass (stats are data-independent, so one probe run
    serves every batch).

    Bit-exactness is preserved by construction: canonical residue
    results are unique, the repo's differential tests pin the compiled
    kernel to the scalar reference, and the generated programs are
    pinned to the same reference -- so fast path and interpretation
    cannot disagree on canonical inputs.  Non-canonical inputs (which
    must fault with interpretation's exact partial stats) are detected
    up front and sent to the interpreter.
    """

    __slots__ = (
        "q", "n", "inverse", "tw", "n_inv",
        "input", "output", "stats_template", "_planes",
    )

    def __init__(self, q, n, inverse, tw, n_inv, input_region, output_region):
        self.q = q
        self.n = n
        self.inverse = inverse
        self.tw = tw
        self.n_inv = n_inv
        self.input = input_region
        self.output = output_region
        self.stats_template: ExecutionStats | None = None
        self._planes: dict[int, tuple] = {}

    def planes(self, k: int):
        """Limb planes of the twiddle table (and scale) at width ``k``.

        Returns ``(tw26, tw52, ninv26, ninv52)`` -- the 26-bit
        decompositions plus their packed base-2^52 copies so the IFMA
        kernel skips its per-call pack.  Cached per ``k`` because an
        executor may widen past the engine's canonical width.
        """
        cached = self._planes.get(k)
        if cached is None:
            tw26 = np.ascontiguousarray(decompose([list(self.tw)], k))
            tw52 = pack52(tw26)
            if self.inverse:
                ninv26 = np.ascontiguousarray(
                    decompose([[self.n_inv]], k)
                )
                ninv52 = pack52(ninv26)
            else:
                ninv26 = ninv52 = None
            cached = (tw26, tw52, ninv26, ninv52)
            self._planes[k] = cached
        return cached


# plan_key -> plan (None memoizes "not a whole-transform program").
_NTT_PLANS: dict[str, _NttPlan | None] = {}
_NTT_KINDS = ("ntt", "ntt_slice")


def _ntt_plan(program: Program) -> _NttPlan | None:
    """The whole-transform plan for ``program``, or ``None``.

    Eligibility is decided from the program object alone: the compile
    pipeline stamps ``metadata["kind"]``, the twiddle table is the
    program's own ``twiddles_*`` launch segment (direction-matched by
    construction), and the inverse scale sits at SDM address
    ``sdm_base`` -- all validated here once and memoized by the
    program's content-addressed ``plan_key``.
    """
    key = program.metadata.get("plan_key")
    if key is None or program.metadata.get("kind") not in _NTT_KINDS:
        return None
    if key in _NTT_PLANS:
        return _NTT_PLANS[key]
    plan = _build_ntt_plan(program)
    _NTT_PLANS[key] = plan
    return plan


def _build_ntt_plan(program: Program) -> _NttPlan | None:
    md = program.metadata
    q, n, direction = md.get("modulus"), md.get("n"), md.get("direction")
    rin, rout = program.input_region, program.output_region
    if (
        not isinstance(q, int)
        or not isinstance(n, int)
        or direction not in ("forward", "inverse")
        or rin is None
        or rout is None
        or rin.length != n
        or rout.length != n
    ):
        return None
    tw_segs = [
        seg for seg in program.vdm_segments
        if seg.name.startswith("twiddles")
    ]
    if len(tw_segs) != 1 or len(tw_segs[0].values) != n:
        return None
    # Launch data must be canonical: a non-canonical constant would
    # fault under interpretation, which the fast path cannot reproduce.
    for seg in (*program.vdm_segments, *program.sdm_segments):
        if not all(0 <= v < q for v in seg.values):
            return None
    n_inv = None
    if direction == "inverse":
        addr = md.get("sdm_base", 0)
        for seg in program.sdm_segments:
            if seg.base <= addr < seg.end:
                n_inv = seg.values[addr - seg.base]
        if n_inv is None:
            return None
    return _NttPlan(
        q, n, direction == "inverse", tw_segs[0].values, n_inv, rin, rout
    )


def _ntt_stats_template(
    program: Program, plan: _NttPlan
) -> ExecutionStats | None:
    """Stats of one interpreted pass (cached on the plan).

    Stats are data-independent -- each instruction counts once and the
    load/store traffic is fixed by the address plans -- so one probe
    interpretation on a zero input (canonical for every modulus) yields
    the exact record of any successful run at any batch width.  A probe
    that faults anyway (e.g. a hand-built program with out-of-bounds
    addresses) permanently rejects the plan.
    """
    if plan.stats_template is None:
        probe = BatchExecutor(program, batch=1)
        probe._ntt_fast = False
        try:
            probe.write_region(program.input_region, [[0] * plan.n])
            plan.stats_template = probe.run()
        except SimulationFault:
            _NTT_PLANS[program.metadata["plan_key"]] = None
            return None
    return plan.stats_template


@dataclass(frozen=True)
class _AddressPlan:
    """Pre-resolved addresses of one static vector load/store.

    ``gather`` is the lane-ordered address vector.  ``scatter_addrs`` /
    ``scatter_lanes`` realize the scalar backend's sequential last-write-wins
    scatter even when an addressing mode (REPEATED) maps several lanes to
    one address: only the last lane per address is materialized.
    """

    gather: np.ndarray
    scatter_addrs: np.ndarray
    scatter_lanes: np.ndarray
    count: int


class BatchExecutor:
    """Executes one program over ``batch`` independent VDM/VRF lane sets.

    Usage::

        ex = BatchExecutor(program, batch=8)
        ex.write_region(program.input_region, eight_coefficient_lists)
        ex.run()
        outs = ex.read_region(program.output_region)   # 8 result lists

    Stats are per program pass (identical to one scalar run), regardless of
    the batch width.
    """

    def __init__(
        self, program: Program, batch: int = 1, vdm_size: int | None = None
    ) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.program = program
        self.batch = batch
        self.vlen = program.vlen
        self.vdm_size = resolve_vdm_size(program, vdm_size)
        self.sdm_size = resolve_sdm_size(program)
        self.stats = ExecutionStats()
        self._limb_k = self._select_limbs(program)
        # One contiguous zero block per file, viewed per register: a
        # single calloc (lazy zero pages) instead of NUM_REGS small
        # allocations -- constructor cost matters at serving batch sizes.
        if self._limb_k is None:
            self.vdm = np.zeros((batch, self.vdm_size), dtype=np.int64)
            self.vrf: list[np.ndarray] = list(
                np.zeros((NUM_REGS, batch, self.vlen), dtype=np.int64)
            )
        else:
            k = self._limb_k
            self.vdm = np.zeros((k, batch, self.vdm_size), dtype=np.int64)
            self.vrf = list(
                np.zeros((NUM_REGS, k, batch, self.vlen), dtype=np.int64)
            )
        self.sdm = [0] * self.sdm_size
        self.srf = [0] * NUM_REGS
        self.arf = [0] * NUM_REGS
        self.mrf = [0] * NUM_REGS
        self._plans: dict[Instruction, _AddressPlan] = {}
        # Whole-transform fast path: on by default, disabled for stats
        # probes (and by tests that need a pure interpretation).
        self._ntt_fast = True
        # Canonicality ledger: register -> modulus it is known canonical
        # for, plus (for single-modulus programs) a per-address VDM map.
        self._canon_reg: dict[int, int] = {}
        moduli = {q for q in program.mrf_init.values() if q > 1}
        self._q0 = moduli.pop() if len(moduli) == 1 else None
        self._vdm_canon = (
            np.zeros(self.vdm_size, dtype=bool)
            if self._q0 is not None
            else None
        )
        apply_launch_state(
            program,
            self._write_vdm_segment,
            self.sdm,
            self.arf,
            self.mrf,
            self.srf,
        )

    # -- representation ----------------------------------------------------
    @property
    def dtype_path(self) -> str:
        """Active element representation: ``"int64"`` or ``"limb<k>x26"``.

        Every path is C integer lanes; there is no object-dtype fallback.
        """
        if self._limb_k is None:
            return "int64"
        return f"limb{self._limb_k}x{LIMB_BITS}"

    @property
    def native_path(self) -> str:
        """Which limb-kernel backend wide-modulus compute dispatches to.

        ``"native+ntt"`` (the whole program lowers to one
        whole-transform call of the compiled kernels -- transform-level
        dispatch), ``"native"`` (the compiled row kernels of
        :mod:`repro.modmath.native` under the interpreter loop --
        row-level dispatch), ``"numpy"`` (the limb engine's array
        sweeps), or ``"n/a"`` on the int64 path, where no limb kernels
        run at all.  Reported into :class:`ExecutionStats` and the
        benchmark JSON so the perf trajectory records which backend
        produced each number.
        """
        if self._limb_k is None:
            return "n/a"
        if self._limb_k <= native.MAX_K and native.active() is not None:
            if self._ntt_fast and self._ntt_engine() is not None:
                return "native+ntt"
            return "native"
        return "numpy"

    def _ntt_engine(self) -> LimbEngine | None:
        """The engine the whole-transform fast path would dispatch to.

        ``None`` when the program is not a single complete transform,
        the executor is not on the single-modulus limb path, or the
        compiled whole-transform kernel is unavailable (``RPU_NATIVE=0``,
        ``RPU_NATIVE_NTT=0``, build failure, k too wide).
        """
        if self._limb_k is None or self._q0 is None:
            return None
        plan = _ntt_plan(self.program)
        if plan is None or plan.q != self._q0:
            return None
        engine = self._engine(plan.q)
        return engine if engine.ntt_native else None

    @staticmethod
    def _select_limbs(program: Program) -> int | None:
        """``None`` (int64 lanes) iff every program constant provably fits;
        otherwise the limb count covering the widest modulus and constant."""
        moduli = list(program.mrf_init.values())
        data = [
            v
            for seg in (*program.vdm_segments, *program.sdm_segments)
            for v in seg.values
        ]
        data.extend(program.srf_init.values())
        if all(q < INT64_MODULUS_LIMIT for q in moduli) and fits_int64(*data):
            return None
        bits = max(
            (abs(v).bit_length() for v in (*moduli, *data)), default=1
        )
        return limbs_for_bits(bits)

    def _engine(self, q: int) -> LimbEngine:
        return _limb_engine(q, self._limb_k)

    def _widen_for(self, values) -> None:
        """Grow the limb count so arbitrary caller data stays exact."""
        bits = max(abs(int(v)).bit_length() for row in values for v in row)
        self._widen_to(limbs_for_bits(bits))

    def _widen_to(self, new_k: int) -> None:
        """Switch to (or grow) the ``new_k``-limb representation.

        Idempotent and never shrinking.  Exposed (privately) so the sharded
        executor can pin every shard to the representation the whole batch
        needs, keeping per-shard state layouts -- and ``dtype_path`` --
        identical to one single-process :class:`BatchExecutor`.
        """
        new_k = max(new_k, self._limb_k or 0)
        if new_k == self._limb_k:
            return
        if self._limb_k is None:
            # int64 lanes -> limb planes; existing state decomposes exactly.
            self.vdm = decompose(self.vdm, new_k)
            self.vrf = [decompose(r, new_k) for r in self.vrf]
        else:
            self.vdm = widen(self.vdm, new_k)
            self.vrf = [widen(r, new_k) for r in self.vrf]
        self._limb_k = new_k

    def _write_vdm_segment(self, seg) -> None:
        """VDM launch hook for the shared ``apply_launch_state``."""
        if self._limb_k is None:
            self.vdm[:, seg.base : seg.end] = np.array(
                seg.values, dtype=np.int64
            )
        else:
            self.vdm[:, :, seg.base : seg.end] = _segment_limbs(
                seg, self._limb_k
            )[:, None, :]
        if self._vdm_canon is not None:
            self._vdm_canon[seg.base : seg.end] = _segment_canonical(
                seg, self._q0
            )

    # -- region I/O --------------------------------------------------------
    def write_region(
        self, region: RegionSpec | None, rows: Sequence[Sequence[int]]
    ) -> None:
        """Place ``batch`` input rows into a VDM region before running."""
        if region is None:
            raise ValueError("program has no such region")
        if len(rows) != self.batch:
            raise ValueError(
                f"expected {self.batch} input rows, got {len(rows)}"
            )
        if isinstance(rows, np.ndarray) and rows.dtype == np.int64:
            # Array fast path (the KEM engine's bulk rows): already the
            # int64 plane shape, no per-row Python conversion needed.
            if rows.ndim != 2 or rows.shape[1] != region.length:
                raise ValueError(
                    f"region {region.name!r} holds {region.length} elements, "
                    f"got shape {rows.shape}"
                )
            if self._limb_k is None:
                self.vdm[:, region.base : region.base + region.length] = rows
                if self._vdm_canon is not None:
                    self._vdm_canon[
                        region.base : region.base + region.length
                    ] = False
                return
            rows = rows.tolist()  # limb planes go through decompose below
        for values in rows:
            if len(values) != region.length:
                raise ValueError(
                    f"region {region.name!r} holds {region.length} elements, "
                    f"got {len(values)}"
                )
        if isinstance(rows, list) and all(isinstance(v, list) for v in rows):
            data = rows  # decompose/np.array copy; no need to copy twice
        else:
            data = [list(values) for values in rows]
        if self._limb_k is None:
            try:
                block = np.array(data, dtype=np.int64)
                if not fits_int64(int(block.min()), int(block.max())):
                    raise OverflowError
            except OverflowError:
                self._widen_for(data)
                block = None
            if block is not None:
                self.vdm[:, region.base : region.base + region.length] = block
        if self._limb_k is not None:
            try:
                planes = decompose(data, self._limb_k)
            except ValueError:
                self._widen_for(data)
                planes = decompose(data, self._limb_k)
            self.vdm[:, :, region.base : region.base + region.length] = planes
        if self._vdm_canon is not None:
            # Caller data is unknown; the first load of it pays the scan.
            self._vdm_canon[region.base : region.base + region.length] = False

    def read_region(self, region: RegionSpec | None) -> list[list[int]]:
        """Read a VDM region after running; one Python-int row per batch."""
        if region is None:
            raise ValueError("program has no such region")
        if self._limb_k is None:
            out = self.vdm[:, region.base : region.base + region.length]
            return [list(map(int, row)) for row in out.tolist()]
        out = compose(self.vdm[:, :, region.base : region.base + region.length])
        return out.tolist()

    def read_region_ndarray(self, region: RegionSpec | None) -> np.ndarray:
        """Int64 fast-path read: the region as one ``(batch, length)`` array.

        Only meaningful on the int64 path (the limb path composes to
        arbitrary-precision Python ints); callers that may widen should
        use :meth:`read_region`.
        """
        if region is None:
            raise ValueError("program has no such region")
        if self._limb_k is not None:
            raise ValueError(
                "read_region_ndarray is int64-path only; the limb path "
                "holds wide integers"
            )
        return self.vdm[:, region.base : region.base + region.length].copy()

    # -- execution ---------------------------------------------------------
    def run(self) -> ExecutionStats:
        """Execute until HALT (or the end of the instruction list)."""
        self.stats.native_path = self.native_path
        if self._ntt_fast and self._run_ntt_native():
            return self.stats
        for inst in self.program.instructions:
            if inst.opcode is Opcode.HALT:
                break
            self._execute(inst)
        return self.stats

    def _run_ntt_native(self) -> bool:
        """One native call for the whole transform; False falls back.

        Reads the input region's limb planes, checks them canonical (a
        non-canonical row must fault through interpretation so the
        partial stats and fault text stay bit-identical to the scalar
        backend), runs every NTT stage inside the compiled kernel, and
        drops the result into the output region.  Stats come from the
        plan's one-pass template -- identical to what the interpreter
        loop would have counted.
        """
        engine = self._ntt_engine()
        if engine is None:
            return False
        plan = _ntt_plan(self.program)
        template = _ntt_stats_template(self.program, plan)
        if template is None:
            return False
        span = slice(plan.input.base, plan.input.base + plan.n)
        a = np.ascontiguousarray(self.vdm[:, :, span])
        if not self._vdm_canon[span].all() and bool(
            engine.noncanonical_mask(a).any()
        ):
            return False
        tw26, tw52, ninv26, ninv52 = plan.planes(self._limb_k)
        if not engine.ntt(
            a, tw26, ninv26, inverse=plan.inverse,
            tw52=tw52, n_inv52=ninv52,
        ):
            return False
        out = slice(plan.output.base, plan.output.base + plan.n)
        self.vdm[:, :, out] = a
        self._vdm_canon[out] = True
        # Accumulate (not assign): repeated run() calls keep counting,
        # exactly like the interpreter loop.
        self.stats.executed += template.executed
        for klass, count in template.by_class.items():
            self.stats.by_class[klass] = (
                self.stats.by_class.get(klass, 0) + count
            )
        self.stats.vdm_reads += template.vdm_reads
        self.stats.vdm_writes += template.vdm_writes
        return True

    def _address_plan(self, inst: Instruction) -> _AddressPlan:
        """Addresses of a load/store, bounds-checked and cached.

        Safe to cache per static instruction because the ARF (the only
        base-address state) is written exclusively by launch code.
        """
        plan = self._plans.get(inst)
        if plan is not None:
            return plan
        base = self.arf[inst.rm] + inst.offset
        gather = element_addresses_array(inst.mode, inst.value, base, self.vlen)
        bad = (gather < 0) | (gather >= self.vdm_size)
        if bad.any():  # report the first offender in lane order
            raise vdm_bounds_error(
                int(gather[np.nonzero(bad)[0][0]]), self.vdm_size
            )
        if gather.dtype != np.dtype(np.int64):
            gather = gather.astype(np.int64)  # all in-range => fits
        if inst.mode is AddressMode.REPEATED:
            # Sequential scatter semantics: the last lane hitting an address
            # wins, so keep exactly that lane per distinct address.  Only
            # REPEATED can map two lanes to one address.
            last_lane = {int(a): j for j, a in enumerate(gather)}
            scatter_addrs = np.array(list(last_lane.keys()), dtype=np.int64)
            scatter_lanes = np.array(list(last_lane.values()), dtype=np.int64)
        else:
            scatter_addrs = gather
            scatter_lanes = np.arange(self.vlen, dtype=np.int64)
        plan = _AddressPlan(
            gather=gather,
            scatter_addrs=scatter_addrs,
            scatter_lanes=scatter_lanes,
            count=len(gather),
        )
        self._plans[inst] = plan
        return plan

    def _read_sdm(self, address: int) -> int:
        if not 0 <= address < self.sdm_size:
            raise sdm_bounds_error(address, self.sdm_size)
        return self.sdm[address]

    def _modulus(self, inst: Instruction) -> int:
        return require_modulus(self.mrf[inst.rm], inst)

    def _check_canonical(self, reg: int, q: int) -> np.ndarray:
        values = self.vrf[reg]
        if self._canon_reg.get(reg) == q:
            return values  # proven canonical; cannot fault
        if self._limb_k is None:
            # min/max reductions make the common (all-canonical) case two
            # allocation-free passes; the fault path may be as slow as it
            # likes.
            if values.min() < 0 or values.max() >= q:
                bad = (values < 0) | (values >= q)
                # Row-major first offender: for batch==1 this is exactly
                # the lane the scalar backend reports.
                first = values[bad].flat[0]
                raise noncanonical_vector_fault(reg, int(first), q)
        else:
            bad = self._engine(q).noncanonical_mask(values)
            if bad.any():
                b_i, lane = np.argwhere(bad)[0]
                first = int(compose(values[:, b_i, lane]))
                raise noncanonical_vector_fault(reg, first, q)
        self._canon_reg[reg] = q
        return values

    def _set_result(self, reg: int, values: np.ndarray, q: int) -> None:
        self.vrf[reg] = values
        self._canon_reg[reg] = q  # engine/expr results are canonical

    def _shuffle(self, op: Opcode, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """The four B512 shuffles as strided lane copies (both dtype paths).

        Equivalent to gathering ``a ++ b`` through
        :func:`repro.femu.semantics.shuffle_permutation`; expressing them as
        interleave/deinterleave slices avoids materializing the 2*vlen
        concatenation per limb plane.
        """
        half = self.vlen // 2
        out = np.empty_like(a)
        if op is Opcode.UNPKLO:
            out[..., 0::2] = a[..., :half]
            out[..., 1::2] = b[..., :half]
        elif op is Opcode.UNPKHI:
            out[..., 0::2] = a[..., half:]
            out[..., 1::2] = b[..., half:]
        elif op is Opcode.PKLO:
            out[..., :half] = a[..., 0::2]
            out[..., half:] = b[..., 0::2]
        else:  # PKHI
            out[..., :half] = a[..., 1::2]
            out[..., half:] = b[..., 1::2]
        return out

    def _execute(self, inst: Instruction) -> None:
        op = inst.opcode
        count_instruction(self.stats, inst)
        limbed = self._limb_k is not None

        if op is Opcode.VLOAD:
            plan = self._address_plan(inst)
            if limbed:
                # numpy lays the advanced-index axis outermost; restore C
                # order so the limb engine's flattened fast path applies.
                self.vrf[inst.vd] = np.ascontiguousarray(
                    self.vdm[:, :, plan.gather]
                )
            else:
                self.vrf[inst.vd] = self.vdm[:, plan.gather]
            if self._vdm_canon is not None and self._vdm_canon[plan.gather].all():
                self._canon_reg[inst.vd] = self._q0
            else:
                self._canon_reg.pop(inst.vd, None)
            self.stats.vdm_reads += plan.count
        elif op is Opcode.VSTORE:
            plan = self._address_plan(inst)
            source = self.vrf[inst.vd]
            if limbed:
                self.vdm[:, :, plan.scatter_addrs] = source[
                    :, :, plan.scatter_lanes
                ]
            else:
                self.vdm[:, plan.scatter_addrs] = source[:, plan.scatter_lanes]
            if self._vdm_canon is not None:
                self._vdm_canon[plan.scatter_addrs] = (
                    self._canon_reg.get(inst.vd) == self._q0
                )
            self.stats.vdm_writes += plan.count
        elif op is Opcode.SLOAD:
            self.srf[inst.rt] = self._read_sdm(self.arf[inst.rm] + inst.offset)
        elif op is Opcode.VBCAST:
            word = self._read_sdm(self.arf[inst.rm] + inst.offset)
            if limbed:
                reg = np.empty(
                    (self._limb_k, self.batch, self.vlen), dtype=np.int64
                )
                reg[:] = decompose([word], self._limb_k)[:, :, None]
                self.vrf[inst.vd] = reg
            else:
                self.vrf[inst.vd] = np.full(
                    (self.batch, self.vlen), word, dtype=np.int64
                )
            self._canon_reg.pop(inst.vd, None)
        elif op in VV_EXPR:
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            b = self._check_canonical(inst.vt, q)
            if limbed:
                result = VV_LIMB[op](self._engine(q), a, b)
            else:
                result = VV_EXPR[op](a, b, q)
            self._set_result(inst.vd, result, q)
        elif op in VS_EXPR:
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            s = self.srf[inst.rt]
            if not 0 <= s < q:
                raise noncanonical_scalar_fault(inst.rt, s, q)
            if limbed:
                s_planes = decompose([s], self._limb_k)[:, :, None]
                result = VS_LIMB[op](self._engine(q), a, s_planes)
            else:
                result = VS_EXPR[op](a, s, q)
            self._set_result(inst.vd, result, q)
        elif op is Opcode.BFLY:
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            b = self._check_canonical(inst.vt, q)
            w = self._check_canonical(inst.vt1, q)
            if limbed:
                hi, lo = bfly_limb(inst.bfly_variant, self._engine(q), a, b, w)
            else:
                hi, lo = bfly(inst.bfly_variant, a, b, w, q)
            self._set_result(inst.vd, hi, q)
            self._set_result(inst.vd1, lo, q)
        elif op in (Opcode.UNPKLO, Opcode.UNPKHI, Opcode.PKLO, Opcode.PKHI):
            self.vrf[inst.vd] = self._shuffle(
                op, self.vrf[inst.vs], self.vrf[inst.vt]
            )
            flags = (
                self._canon_reg.get(inst.vs),
                self._canon_reg.get(inst.vt),
            )
            if flags[0] is not None and flags[0] == flags[1]:
                self._canon_reg[inst.vd] = flags[0]
            else:
                self._canon_reg.pop(inst.vd, None)
        else:  # pragma: no cover - HALT handled by run()
            raise SimulationFault(f"unexpected opcode {op}")


class VectorizedSimulator:
    """Drop-in numpy replacement for the scalar :class:`FunctionalSimulator`.

    Same constructor and ``write_region``/``run``/``read_region`` surface,
    same faults, bit-identical outputs and execution stats -- just one
    array expression per instruction instead of a Python loop per lane.
    For multi-input throughput use :class:`BatchExecutor` directly.
    """

    def __init__(self, program: Program, vdm_size: int | None = None) -> None:
        self.program = program
        self._engine = BatchExecutor(program, batch=1, vdm_size=vdm_size)

    @property
    def stats(self) -> ExecutionStats:
        return self._engine.stats

    @property
    def dtype_path(self) -> str:
        """The element representation the engine chose (never object)."""
        return self._engine.dtype_path

    @property
    def native_path(self) -> str:
        """Limb-kernel backend for wide compute (see BatchExecutor)."""
        return self._engine.native_path

    def write_region(self, region: RegionSpec | None, values: Sequence[int]) -> None:
        """Place caller data into a VDM region before running."""
        if region is None:
            raise ValueError("program has no such region")
        self._engine.write_region(region, [values])

    def read_region(self, region: RegionSpec | None) -> list[int]:
        """Read a VDM region after running."""
        return self._engine.read_region(region)[0]

    def run(self) -> ExecutionStats:
        """Execute until HALT (or the end of the instruction list)."""
        return self._engine.run()
