"""Numpy-backed FEMU backend: vectorized and batched functional execution.

:class:`BatchExecutor` interprets the same :class:`~repro.isa.program.Program`
objects as the scalar :class:`~repro.femu.executor.FunctionalSimulator`, but
holds each vector register and the VDM as ``(batch, ...)`` numpy arrays, so

* each instruction's vlen-wide element loop becomes one array expression,
  and
* B independent inputs (an RNS tower's residue polynomials, or B user
  requests) flow through the instruction stream in a *single pass* -- the
  per-instruction decode/dispatch overhead is paid once, not B times.

:class:`VectorizedSimulator` is the batch-of-one facade with the exact
``write_region``/``run``/``read_region`` surface of the scalar simulator.

Element representation follows :mod:`repro.modmath.vectorized`: int64 lanes
when every program modulus stays below 2^31 (the all-C fast path), object
(arbitrary-precision) lanes for the paper's 128-bit moduli.  Both are
bit-exact with the scalar backend -- the semantics come from the same
shared table (:mod:`repro.femu.semantics`), and ``tests/test_vectorized_femu.py``
proves equality element-for-element on every generated kernel shape.

Scalar machine state (SRF/ARF/MRF and the SDM) carries no batch axis: B512
has no scalar-store instruction, so scalar state depends only on the
program, never on the vector data, and is provably identical across batch
lanes.  This is also why vector load/store addresses can be computed once
per static instruction and cached: the ARF is launch-time constant.
"""

from __future__ import annotations

import functools
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.femu.semantics import (
    VS_EXPR,
    VV_EXPR,
    ExecutionStats,
    SimulationFault,
    apply_launch_state,
    bfly,
    count_instruction,
    noncanonical_scalar_fault,
    noncanonical_vector_fault,
    require_modulus,
    resolve_sdm_size,
    resolve_vdm_size,
    sdm_bounds_error,
    shuffle_permutation,
    vdm_bounds_error,
)
from repro.femu.state import NUM_REGS
from repro.isa.addressing import AddressMode, element_addresses_array
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program, RegionSpec
from repro.modmath.vectorized import INT64_MODULUS_LIMIT, fits_int64

__all__ = ["BatchExecutor", "VectorizedSimulator"]


@functools.lru_cache(maxsize=None)
def _shuffle_index(op: Opcode, vlen: int) -> np.ndarray:
    """The shared shuffle permutation, materialized once as an index array."""
    return np.array(shuffle_permutation(op, vlen), dtype=np.int64)


@dataclass(frozen=True)
class _AddressPlan:
    """Pre-resolved addresses of one static vector load/store.

    ``gather`` is the lane-ordered address vector.  ``scatter_addrs`` /
    ``scatter_lanes`` realize the scalar backend's sequential last-write-wins
    scatter even when an addressing mode (REPEATED) maps several lanes to
    one address: only the last lane per address is materialized.
    """

    gather: np.ndarray
    scatter_addrs: np.ndarray
    scatter_lanes: np.ndarray
    count: int


class BatchExecutor:
    """Executes one program over ``batch`` independent VDM/VRF lane sets.

    Usage::

        ex = BatchExecutor(program, batch=8)
        ex.write_region(program.input_region, eight_coefficient_lists)
        ex.run()
        outs = ex.read_region(program.output_region)   # 8 result lists

    Stats are per program pass (identical to one scalar run), regardless of
    the batch width.
    """

    def __init__(
        self, program: Program, batch: int = 1, vdm_size: int | None = None
    ) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.program = program
        self.batch = batch
        self.vlen = program.vlen
        self.vdm_size = resolve_vdm_size(program, vdm_size)
        self.sdm_size = resolve_sdm_size(program)
        self.stats = ExecutionStats()
        self._dtype = self._select_dtype(program)
        self.vdm = np.zeros((batch, self.vdm_size), dtype=self._dtype)
        self.vrf: list[np.ndarray] = [
            np.zeros((batch, self.vlen), dtype=self._dtype)
            for _ in range(NUM_REGS)
        ]
        self.sdm = [0] * self.sdm_size
        self.srf = [0] * NUM_REGS
        self.arf = [0] * NUM_REGS
        self.mrf = [0] * NUM_REGS
        self._plans: dict[Instruction, _AddressPlan] = {}
        apply_launch_state(
            program,
            self._write_vdm_segment,
            self.sdm,
            self.arf,
            self.mrf,
            self.srf,
        )

    # -- representation ----------------------------------------------------
    @staticmethod
    def _select_dtype(program: Program) -> np.dtype:
        """int64 lanes iff every program constant provably fits them."""
        moduli = list(program.mrf_init.values())
        data = [
            v
            for seg in (*program.vdm_segments, *program.sdm_segments)
            for v in seg.values
        ]
        data.extend(program.srf_init.values())
        if all(q < INT64_MODULUS_LIMIT for q in moduli) and fits_int64(*data):
            return np.dtype(np.int64)
        return np.dtype(object)

    def _promote_to_object(self) -> None:
        """Switch state to arbitrary-precision lanes (caller data overflow)."""
        if self._dtype == np.dtype(object):
            return
        self._dtype = np.dtype(object)
        self.vdm = self.vdm.astype(object)
        self.vrf = [r.astype(object) for r in self.vrf]

    def _write_vdm_segment(self, seg) -> None:
        """VDM launch hook for the shared ``apply_launch_state``."""
        self.vdm[:, seg.base : seg.end] = np.array(
            seg.values, dtype=self._dtype
        )

    # -- region I/O --------------------------------------------------------
    def write_region(
        self, region: RegionSpec | None, rows: Sequence[Sequence[int]]
    ) -> None:
        """Place ``batch`` input rows into a VDM region before running."""
        if region is None:
            raise ValueError("program has no such region")
        if len(rows) != self.batch:
            raise ValueError(
                f"expected {self.batch} input rows, got {len(rows)}"
            )
        for values in rows:
            if len(values) != region.length:
                raise ValueError(
                    f"region {region.name!r} holds {region.length} elements, "
                    f"got {len(values)}"
                )
        if self._dtype == np.dtype(np.int64) and not all(
            fits_int64(*values) for values in rows
        ):
            self._promote_to_object()
        self.vdm[:, region.base : region.base + region.length] = np.array(
            [list(values) for values in rows], dtype=self._dtype
        )

    def read_region(self, region: RegionSpec | None) -> list[list[int]]:
        """Read a VDM region after running; one Python-int row per batch."""
        if region is None:
            raise ValueError("program has no such region")
        out = self.vdm[:, region.base : region.base + region.length]
        return [list(map(int, row)) for row in out.tolist()]

    # -- execution ---------------------------------------------------------
    def run(self) -> ExecutionStats:
        """Execute until HALT (or the end of the instruction list)."""
        for inst in self.program.instructions:
            if inst.opcode is Opcode.HALT:
                break
            self._execute(inst)
        return self.stats

    def _address_plan(self, inst: Instruction) -> _AddressPlan:
        """Addresses of a load/store, bounds-checked and cached.

        Safe to cache per static instruction because the ARF (the only
        base-address state) is written exclusively by launch code.
        """
        plan = self._plans.get(inst)
        if plan is not None:
            return plan
        base = self.arf[inst.rm] + inst.offset
        gather = element_addresses_array(inst.mode, inst.value, base, self.vlen)
        bad = (gather < 0) | (gather >= self.vdm_size)
        if bad.any():  # report the first offender in lane order
            raise vdm_bounds_error(
                int(gather[np.nonzero(bad)[0][0]]), self.vdm_size
            )
        if gather.dtype != np.dtype(np.int64):
            gather = gather.astype(np.int64)  # all in-range => fits
        if inst.mode is AddressMode.REPEATED:
            # Sequential scatter semantics: the last lane hitting an address
            # wins, so keep exactly that lane per distinct address.  Only
            # REPEATED can map two lanes to one address.
            last_lane = {int(a): j for j, a in enumerate(gather)}
            scatter_addrs = np.array(list(last_lane.keys()), dtype=np.int64)
            scatter_lanes = np.array(list(last_lane.values()), dtype=np.int64)
        else:
            scatter_addrs = gather
            scatter_lanes = np.arange(self.vlen, dtype=np.int64)
        plan = _AddressPlan(
            gather=gather,
            scatter_addrs=scatter_addrs,
            scatter_lanes=scatter_lanes,
            count=len(gather),
        )
        self._plans[inst] = plan
        return plan

    def _read_sdm(self, address: int) -> int:
        if not 0 <= address < self.sdm_size:
            raise sdm_bounds_error(address, self.sdm_size)
        return self.sdm[address]

    def _modulus(self, inst: Instruction) -> int:
        return require_modulus(self.mrf[inst.rm], inst)

    def _check_canonical(self, reg: int, q: int) -> np.ndarray:
        values = self.vrf[reg]
        # min/max reductions make the common (all-canonical) case two
        # allocation-free passes; the fault path may be as slow as it likes.
        if values.min() < 0 or values.max() >= q:
            bad = (values < 0) | (values >= q)
            # Row-major first offender: for batch==1 this is exactly the
            # lane the scalar backend reports.
            first = values[bad].flat[0]
            raise noncanonical_vector_fault(reg, int(first), q)
        return values

    def _execute(self, inst: Instruction) -> None:
        op = inst.opcode
        count_instruction(self.stats, inst)

        if op is Opcode.VLOAD:
            plan = self._address_plan(inst)
            self.vrf[inst.vd] = self.vdm[:, plan.gather]
            self.stats.vdm_reads += plan.count
        elif op is Opcode.VSTORE:
            plan = self._address_plan(inst)
            source = self.vrf[inst.vd]
            self.vdm[:, plan.scatter_addrs] = source[:, plan.scatter_lanes]
            self.stats.vdm_writes += plan.count
        elif op is Opcode.SLOAD:
            self.srf[inst.rt] = self._read_sdm(self.arf[inst.rm] + inst.offset)
        elif op is Opcode.VBCAST:
            word = self._read_sdm(self.arf[inst.rm] + inst.offset)
            self.vrf[inst.vd] = np.full(
                (self.batch, self.vlen), word, dtype=self._dtype
            )
        elif op in VV_EXPR:
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            b = self._check_canonical(inst.vt, q)
            self.vrf[inst.vd] = VV_EXPR[op](a, b, q)
        elif op in VS_EXPR:
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            s = self.srf[inst.rt]
            if not 0 <= s < q:
                raise noncanonical_scalar_fault(inst.rt, s, q)
            self.vrf[inst.vd] = VS_EXPR[op](a, s, q)
        elif op is Opcode.BFLY:
            q = self._modulus(inst)
            a = self._check_canonical(inst.vs, q)
            b = self._check_canonical(inst.vt, q)
            w = self._check_canonical(inst.vt1, q)
            hi, lo = bfly(inst.bfly_variant, a, b, w, q)
            self.vrf[inst.vd] = hi
            self.vrf[inst.vd1] = lo
        elif op in (Opcode.UNPKLO, Opcode.UNPKHI, Opcode.PKLO, Opcode.PKHI):
            concat = np.concatenate(
                (self.vrf[inst.vs], self.vrf[inst.vt]), axis=1
            )
            self.vrf[inst.vd] = concat[:, _shuffle_index(op, self.vlen)]
        else:  # pragma: no cover - HALT handled by run()
            raise SimulationFault(f"unexpected opcode {op}")


class VectorizedSimulator:
    """Drop-in numpy replacement for the scalar :class:`FunctionalSimulator`.

    Same constructor and ``write_region``/``run``/``read_region`` surface,
    same faults, bit-identical outputs and execution stats -- just one
    array expression per instruction instead of a Python loop per lane.
    For multi-input throughput use :class:`BatchExecutor` directly.
    """

    def __init__(self, program: Program, vdm_size: int | None = None) -> None:
        self.program = program
        self._engine = BatchExecutor(program, batch=1, vdm_size=vdm_size)

    @property
    def stats(self) -> ExecutionStats:
        return self._engine.stats

    def write_region(self, region: RegionSpec | None, values: Sequence[int]) -> None:
        """Place caller data into a VDM region before running."""
        if region is None:
            raise ValueError("program has no such region")
        self._engine.write_region(region, [values])

    def read_region(self, region: RegionSpec | None) -> list[int]:
        """Read a VDM region after running."""
        return self._engine.read_region(region)[0]

    def run(self) -> ExecutionStats:
        """Execute until HALT (or the end of the instruction list)."""
        return self._engine.run()
