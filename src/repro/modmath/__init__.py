"""Modular arithmetic substrate for ring processing.

This package models the Large-Arithmetic-Word (LAW) operations that the RPU's
HPLEs implement in hardware: modular addition, subtraction, multiplication
(plain, Barrett-reduced, Montgomery-domain), together with the number theory
needed to build NTT-friendly prime fields (Miller-Rabin primality, primitive
roots, 2n-th roots of unity for negacyclic transforms).
"""

from repro.modmath.arith import (
    mod_add,
    mod_inv,
    mod_mul,
    mod_neg,
    mod_pow,
    mod_sub,
)
from repro.modmath.barrett import BarrettReducer
from repro.modmath.montgomery import MontgomeryDomain
from repro.modmath.primes import (
    find_ntt_prime,
    find_primitive_root,
    find_root_of_unity,
    is_prime,
    minimal_2nth_root,
)
from repro.modmath.vectorized import (
    INT64_MODULUS_LIMIT,
    dtype_for_modulus,
    residue_array,
    residue_matrix,
    vec_barrett_reduce,
    vec_mod_add,
    vec_mod_mul,
    vec_mod_sub,
    vec_montgomery_mul,
    vec_montgomery_redc,
)

__all__ = [
    "mod_add",
    "mod_sub",
    "mod_neg",
    "mod_mul",
    "mod_pow",
    "mod_inv",
    "BarrettReducer",
    "MontgomeryDomain",
    "is_prime",
    "find_ntt_prime",
    "find_primitive_root",
    "find_root_of_unity",
    "minimal_2nth_root",
    "INT64_MODULUS_LIMIT",
    "dtype_for_modulus",
    "residue_array",
    "residue_matrix",
    "vec_mod_add",
    "vec_mod_sub",
    "vec_mod_mul",
    "vec_barrett_reduce",
    "vec_montgomery_redc",
    "vec_montgomery_mul",
]
