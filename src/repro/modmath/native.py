"""Compiled native limb kernels: build-on-demand, CPU-feature dispatched.

:mod:`repro.modmath.limb` expresses wide-modulus arithmetic as numpy
sweeps over 26-bit limb planes; every sweep is a full pass over memory.
``limb_kernels.c`` (shipped next to this module) fuses each LAW row
operation -- ``add_mod``/``sub_mod``, the schoolbook+Barrett ``mul_mod``
and the fused Cooley-Tukey butterfly ``bfly_ct`` -- into a single pass
per block of lanes.  This module turns that source into a loadable
backend without any build system: the C file is compiled with the host's
``cc`` into a content-addressed cache directory the first time it is
needed, bound over :mod:`ctypes`, and handed to
:class:`~repro.modmath.limb.LimbEngine`'s dispatch layer.

Dispatch policy (the ``RPU_NATIVE`` environment variable, validated on
first use exactly like ``RPU_VEC_MUL_MIN_DEGREE``):

* ``"auto"`` (default) -- probe the CPU and toolchain; use the compiled
  kernels when the build succeeds, fall back to numpy otherwise.
* ``"1"`` -- same probe/build, but a failure emits a one-line
  :class:`RuntimeWarning` naming the reason (the numpy fallback still
  engages -- the repo never hard-fails on a missing toolchain).
* ``"0"`` -- never build or load; pure numpy.

The build flags follow the probed CPU features: on an AVX-512 IFMA host
(the 52-bit limb-product instruction family HEXL-style HE libraries
target) the compiler is given the full ``-mavx512*`` license, otherwise
AVX2 or plain ``-O3``.  ``RPU_NATIVE_FLAGS`` *caps* that ladder by tier
name (``generic``/``avx2``/``avx512f``/``avx512ifma``) -- the effective
tier is the highest one both allowed and supported by the CPU, so
forcing a tier the host lacks degrades safely instead of emitting
illegal instructions.  ``RPU_NATIVE_NTT=0|1|auto`` independently gates
the whole-transform NTT kernel (the per-row kernels stay native), which
lets benches compare stage-loop-native against whole-transform-native
in one process.  The compiled object is keyed by a fingerprint of
the source, compiler and flags, so feature or source changes rebuild
automatically and concurrent processes (shard-pool workers) can share
one cache entry; compiles land under a temporary name and are published
with an atomic ``os.replace``.

Bit-exactness is *tested*, not assumed: ``tests/test_native.py`` fuzzes
every exported kernel against the numpy engine (which is itself pinned
to the scalar oracle), including the worst-case Barrett slack inputs.
"""

from __future__ import annotations

import contextlib
import ctypes
import functools
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path

import numpy as np

__all__ = [
    "MAX_K",
    "NATIVE_ENV",
    "FLAGS_ENV",
    "NTT_ENV",
    "NativeKernels",
    "active",
    "cpu_features",
    "describe",
    "forced_mode",
    "forced_ntt",
    "forced_tier",
    "ntt_enabled",
    "reset",
]

NATIVE_ENV = "RPU_NATIVE"
"""Environment override for the native-kernel dispatch: ``0``/``1``/``auto``."""

CACHE_DIR_ENV = "RPU_NATIVE_CACHE_DIR"
"""Environment override for the build-cache directory."""

CC_ENV = "RPU_NATIVE_CC"
"""Environment override for the C compiler (used by the failure-injection
tests, and by deployments that pin a toolchain)."""

FLAGS_ENV = "RPU_NATIVE_FLAGS"
"""Environment cap on the compile-flag tier: ``generic``/``avx2``/
``avx512f``/``avx512ifma``.  The effective tier is the highest one both
allowed by this cap and supported by the probed CPU."""

NTT_ENV = "RPU_NATIVE_NTT"
"""Gate for the whole-transform NTT kernel only: ``0``/``1``/``auto``.
``0`` keeps the per-row kernels native but drives the transform from the
Python stage loop -- the bench/test knob for transform-vs-stage-loop."""

ABI_VERSION = 2
"""Expected ``rpu_limb_abi()`` of a loaded object; mismatches rebuild."""

MAX_K = 16
"""Widest limb count the compiled kernels accept (matches ``MAX_K`` in
``limb_kernels.c``); wider engines stay on the numpy path."""

_SOURCE = Path(__file__).with_name("limb_kernels.c")

_MODES = ("0", "1", "auto")

_TIER_NAMES = ("generic", "avx2", "avx512f", "avx512ifma")


@functools.lru_cache(maxsize=32)
def _parse_choice(env: str, raw: str, choices: tuple[str, ...]) -> str:
    """Validate one environment setting (parsed once per value)."""
    if raw not in choices:
        raise ValueError(f"{env} must be one of {choices}, got {raw!r}")
    return raw


def _parse_mode(raw: str) -> str:
    """Validate one ``RPU_NATIVE`` setting (parsed once per value)."""
    return _parse_choice(NATIVE_ENV, raw, _MODES)


def native_mode() -> str:
    """The requested dispatch mode: ``"0"``, ``"1"`` or ``"auto"``."""
    raw = os.environ.get(NATIVE_ENV)
    if raw is None:
        return "auto"
    return _parse_mode(raw)


def flags_cap() -> str | None:
    """The ``RPU_NATIVE_FLAGS`` tier cap, or ``None`` (no cap)."""
    raw = os.environ.get(FLAGS_ENV)
    if raw is None:
        return None
    return _parse_choice(FLAGS_ENV, raw, _TIER_NAMES)


def ntt_mode() -> str:
    """The requested whole-transform-NTT mode: ``"0"``/``"1"``/``"auto"``."""
    raw = os.environ.get(NTT_ENV)
    if raw is None:
        return "auto"
    return _parse_choice(NTT_ENV, raw, _MODES)


def ntt_enabled() -> bool:
    """Whether dispatch may use the whole-transform NTT kernel."""
    return ntt_mode() != "0"


@functools.lru_cache(maxsize=1)
def cpu_features() -> frozenset[str]:
    """Lower-case CPU feature flags probed from the host (may be empty).

    Linux exposes them in ``/proc/cpuinfo``; other platforms simply
    return an empty set, which selects the portable ``-O3`` build.
    """
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith(("flags", "features")):
                    return frozenset(line.split(":", 1)[1].split())
    except OSError:
        pass
    return frozenset()


def _compiler() -> str | None:
    """The C compiler to use, or ``None`` when the host has none."""
    override = os.environ.get(CC_ENV)
    if override:
        return override
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


# Flag-tier ladder, widest first.  Each entry: (name, CPU features the
# tier requires, extra compile flags).  ``generic`` always matches --
# plain -O3 (aarch64 SIMD is baseline there; -O3 already uses it).
_TIERS: tuple[tuple[str, tuple[str, ...], tuple[str, ...]], ...] = (
    (
        "avx512ifma",
        ("avx512ifma",),
        ("-mavx512f", "-mavx512vl", "-mavx512dq", "-mavx512ifma"),
    ),
    ("avx512f", ("avx512f",), ("-mavx512f", "-mavx512dq")),
    ("avx2", ("avx2",), ("-mavx2",)),
    ("generic", (), ()),
)


def selected_tier() -> tuple[str, list[str]]:
    """The effective flag tier: highest one probed *and* allowed.

    ``RPU_NATIVE_FLAGS`` caps the ladder by name; the CPU probe still
    has to support the tier, so a forced cap can only lower the
    selection, never emit instructions the host would fault on.
    """
    features = cpu_features()
    cap = flags_cap()
    below_cap = cap is None
    for name, needs, flags in _TIERS:
        if not below_cap:
            if name != cap:
                continue
            below_cap = True
        if all(f in features for f in needs):
            return name, list(flags)
    return "generic", []


def _feature_flags(features: frozenset[str]) -> list[str]:
    """Per-CPU-feature compile flags: widest probed+allowed tier wins."""
    del features  # the probe is read inside selected_tier()
    return selected_tier()[1]


def _base_flags() -> list[str]:
    return ["-O3", "-funroll-loops", "-fPIC", "-shared", "-std=c11"]


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    home = Path.home()
    base = (
        home / ".cache"
        if os.access(home, os.W_OK)
        else Path(tempfile.gettempdir())
    )
    return base / f"rpu_native-{os.getuid() if hasattr(os, 'getuid') else 0}"


class NativeBuildError(RuntimeError):
    """The compiled backend could not be produced or loaded."""


def _fingerprint(source: str, cc: str, flags: list[str]) -> str:
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(cc.encode())
    h.update(" ".join(flags).encode())
    h.update(f"abi{ABI_VERSION}".encode())
    h.update(platform.machine().encode())
    return h.hexdigest()[:16]


def _build(cc: str, flags: list[str]) -> Path:
    """Compile (or reuse) the shared object; returns its path."""
    try:
        source = _SOURCE.read_text()
    except OSError as exc:
        raise NativeBuildError(f"kernel source unreadable: {exc}") from exc
    digest = _fingerprint(source, cc, flags)
    out_dir = _cache_dir() / digest
    so_path = out_dir / "limb_kernels.so"
    if so_path.exists():
        return so_path
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise NativeBuildError(f"cache dir unwritable: {exc}") from exc
    tmp = out_dir / f".build-{os.getpid()}.so"
    cmd = [cc, *flags, "-o", str(tmp), str(_SOURCE)]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeBuildError(f"compiler failed to run: {exc}") from exc
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout or "").strip().splitlines()
        detail = tail[-1] if tail else f"exit {proc.returncode}"
        raise NativeBuildError(f"compile failed: {detail}")
    os.replace(tmp, so_path)  # atomic publish; concurrent builders race safely
    return so_path


_PTR = ctypes.POINTER(ctypes.c_int64)
_I64 = ctypes.c_int64


class NativeKernels:
    """ctypes binding over the compiled row kernels.

    Stateless beyond the loaded library handle: the C kernels keep all
    scratch on the stack, so one instance serves every engine and
    thread.  Methods return ``None`` for shapes the compiled backend
    does not cover (the caller then stays on numpy).
    """

    def __init__(self, so_path: Path) -> None:
        self.so_path = so_path
        lib = ctypes.CDLL(str(so_path))
        lib.rpu_limb_abi.restype = ctypes.c_int
        if lib.rpu_limb_abi() != ABI_VERSION:
            raise NativeBuildError(
                f"ABI mismatch: {so_path} reports {lib.rpu_limb_abi()}, "
                f"expected {ABI_VERSION}"
            )
        lib.rpu_limb_add_mod.argtypes = [_PTR] * 4 + [_I64] * 3
        lib.rpu_limb_add_mod.restype = ctypes.c_int
        lib.rpu_limb_sub_mod.argtypes = [_PTR] * 4 + [_I64] * 3
        lib.rpu_limb_sub_mod.restype = ctypes.c_int
        lib.rpu_limb_mul_mod.argtypes = [_PTR] * 6 + [_I64] * 6
        lib.rpu_limb_mul_mod.restype = ctypes.c_int
        lib.rpu_limb_bfly_ct.argtypes = [_PTR] * 8 + [_I64] * 6
        lib.rpu_limb_bfly_ct.restype = ctypes.c_int
        # Whole-transform entry points (ABI 2).  Bound tolerantly: a
        # stale or stripped object without them keeps the per-row
        # kernels working and just reports has_ntt=False, so dispatch
        # falls back to the Python stage loop instead of failing.
        try:
            lib.rpu_limb_has_ifma.restype = ctypes.c_int
            self.has_ifma = bool(lib.rpu_limb_has_ifma())
            lib.rpu_limb_ntt.argtypes = [_PTR] * 6 + [_I64] * 8
            lib.rpu_limb_ntt.restype = ctypes.c_int
            lib.rpu_limb_ntt52.argtypes = [_PTR] * 6 + [_I64] * 8
            lib.rpu_limb_ntt52.restype = ctypes.c_int
            lib.rpu_limb_pack52.argtypes = [_PTR, _I64, _I64]
            lib.rpu_limb_pack52.restype = ctypes.c_int
            lib.rpu_limb_unpack52.argtypes = [_PTR, _I64, _I64]
            lib.rpu_limb_unpack52.restype = ctypes.c_int
            self.has_ntt = True
        except AttributeError:
            self.has_ifma = False
            self.has_ntt = False
        self._lib = lib

    @staticmethod
    def _ptr(a: np.ndarray):
        return a.ctypes.data_as(_PTR)

    def _prepare(self, engine, arrays):
        """Broadcast operands to one C-contiguous shape; derive rows/lanes.

        Returns ``(ops, shape, rows, lanes)`` or ``None`` when the
        compiled backend cannot take this call (too many limbs, or a
        multi-row engine fed operands without the row axis).
        """
        if engine.k > MAX_K or engine._km > MAX_K + 1:
            return None
        shape = np.broadcast_shapes(*[a.shape for a in arrays])
        rows = len(engine.moduli)
        if rows > 1:
            if len(shape) < 2 or shape[1] != rows:
                return None
            lanes = 1
            for d in shape[2:]:
                lanes *= d
        else:
            lanes = 1
            for d in shape[1:]:
                lanes *= d
        if lanes == 0:
            return None
        ops = []
        for a in arrays:
            if a.shape != shape:
                a = np.broadcast_to(a, shape)
            if not a.flags["C_CONTIGUOUS"]:
                a = np.ascontiguousarray(a)
            ops.append(a)
        return ops, shape, rows, lanes

    def add_mod(self, engine, a, b):
        prep = self._prepare(engine, (a, b))
        if prep is None:
            return None
        (a, b), shape, rows, lanes = prep
        qext, _, _ = engine._native_consts()
        out = np.empty(shape, dtype=np.int64)
        rc = self._lib.rpu_limb_add_mod(
            self._ptr(a), self._ptr(b), self._ptr(out), self._ptr(qext),
            engine.k, rows, lanes,
        )
        return out if rc == 0 else None

    def sub_mod(self, engine, a, b):
        prep = self._prepare(engine, (a, b))
        if prep is None:
            return None
        (a, b), shape, rows, lanes = prep
        qext, _, _ = engine._native_consts()
        out = np.empty(shape, dtype=np.int64)
        rc = self._lib.rpu_limb_sub_mod(
            self._ptr(a), self._ptr(b), self._ptr(out), self._ptr(qext),
            engine.k, rows, lanes,
        )
        return out if rc == 0 else None

    def mul_mod(self, engine, a, b):
        prep = self._prepare(engine, (a, b))
        if prep is None:
            return None
        (a, b), shape, rows, lanes = prep
        qext, q2ext, mu = engine._native_consts()
        out = np.empty(shape, dtype=np.int64)
        rc = self._lib.rpu_limb_mul_mod(
            self._ptr(a), self._ptr(b), self._ptr(out),
            self._ptr(qext), self._ptr(q2ext), self._ptr(mu),
            engine.k, mu.shape[1], engine._s1, engine._s2, rows, lanes,
        )
        return out if rc == 0 else None

    def bfly_ct(self, engine, a, b, w):
        prep = self._prepare(engine, (a, b, w))
        if prep is None:
            return None
        (a, b, w), shape, rows, lanes = prep
        qext, q2ext, mu = engine._native_consts()
        hi = np.empty(shape, dtype=np.int64)
        lo = np.empty(shape, dtype=np.int64)
        rc = self._lib.rpu_limb_bfly_ct(
            self._ptr(a), self._ptr(b), self._ptr(w),
            self._ptr(hi), self._ptr(lo),
            self._ptr(qext), self._ptr(q2ext), self._ptr(mu),
            engine.k, mu.shape[1], engine._s1, engine._s2, rows, lanes,
        )
        return (hi, lo) if rc == 0 else None

    # -- whole-transform entry points (ABI 2) -------------------------------

    def ntt26(self, data, tw, ninv, qext, q2ext, mu, k, km, s1, s2, rows, n,
              crows, inverse):
        """All log2(n) stages of ``rows`` transforms in one call.

        ``data`` is the C-contiguous ``(k, rows, n)`` plane block,
        mutated in place; returns ``True`` on success (``False`` sends
        the caller back to the stage loop).
        """
        if not self.has_ntt:
            return False
        rc = self._lib.rpu_limb_ntt(
            self._ptr(data), self._ptr(tw), self._ptr(ninv),
            self._ptr(qext), self._ptr(q2ext), self._ptr(mu),
            k, km, s1, s2, rows, n, crows, 1 if inverse else 0,
        )
        return rc == 0

    def ntt52(self, data, tw52, ninv52, q52ext, q252ext, mu52, k, km2, s1p,
              s2p, rows, n, crows, inverse):
        """The 52-bit packed tier: same external planes as :meth:`ntt26`."""
        if not self.has_ntt:
            return False
        rc = self._lib.rpu_limb_ntt52(
            self._ptr(data), self._ptr(tw52), self._ptr(ninv52),
            self._ptr(q52ext), self._ptr(q252ext), self._ptr(mu52),
            k, km2, s1p, s2p, rows, n, crows, 1 if inverse else 0,
        )
        return rc == 0

    def pack52(self, data, k, count):
        """In-place 26->52 pack of a ``(k, count)`` plane block (tests)."""
        if not self.has_ntt:
            return False
        return self._lib.rpu_limb_pack52(self._ptr(data), k, count) == 0

    def unpack52(self, data, k, count):
        """In-place 52->26 unpack of a ``(k, count)`` plane block (tests)."""
        if not self.has_ntt:
            return False
        return self._lib.rpu_limb_unpack52(self._ptr(data), k, count) == 0


# -- the process-wide dispatch decision -------------------------------------

_state: dict = {"kernels": None, "resolved": False, "error": None}


def _resolve() -> NativeKernels | None:
    cc = _compiler()
    if cc is None:
        raise NativeBuildError("no C compiler on PATH (cc/gcc/clang)")
    flags = _base_flags() + _feature_flags(cpu_features())
    return NativeKernels(_build(cc, flags))


def active() -> NativeKernels | None:
    """The loaded native backend, or ``None`` (numpy fallback).

    Resolved at most once per process per :func:`reset`; a failed
    probe/build memoizes the fallback and emits exactly one one-line
    warning so long-lived servers do not re-attempt (or re-log) per op.
    """
    mode = native_mode()
    if mode == "0":
        return None
    if _state["resolved"]:
        return _state["kernels"]
    try:
        kernels = _resolve()
    except NativeBuildError as exc:
        _state["error"] = str(exc)
        kernels = None
        warnings.warn(
            f"RPU native limb kernels unavailable ({exc}); "
            "using the numpy fallback",
            RuntimeWarning,
            stacklevel=2,
        )
    _state["kernels"] = kernels
    _state["resolved"] = True
    return kernels


def reset() -> None:
    """Forget the resolved backend and parsed env (tests re-probe)."""
    _state.update(kernels=None, resolved=False, error=None)
    _parse_choice.cache_clear()
    cpu_features.cache_clear()


@contextlib.contextmanager
def _forced_env(env: str, value: str):
    prev = os.environ.get(env)
    os.environ[env] = value
    reset()
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(env, None)
        else:
            os.environ[env] = prev
        reset()


@contextlib.contextmanager
def forced_mode(mode: str):
    """Temporarily pin ``RPU_NATIVE`` to ``mode``, re-resolving the backend.

    Bench/test helper for comparing the two dispatch targets in one
    process; the prior environment is restored (and the backend
    re-resolved) on exit, so the surrounding process returns to its
    configured dispatch.
    """
    _parse_mode(mode)  # reject bad modes before touching process state
    with _forced_env(NATIVE_ENV, mode):
        yield


@contextlib.contextmanager
def forced_tier(name: str):
    """Temporarily cap ``RPU_NATIVE_FLAGS`` to ``name`` and rebuild.

    The differential tests run the same inputs under ``generic``,
    ``avx512f`` and ``avx512ifma`` builds; each cap fingerprints to its
    own cache entry, so tiers coexist on disk.
    """
    _parse_choice(FLAGS_ENV, name, _TIER_NAMES)
    with _forced_env(FLAGS_ENV, name):
        yield


@contextlib.contextmanager
def forced_ntt(mode: str):
    """Temporarily pin ``RPU_NATIVE_NTT`` (whole-transform gate) to ``mode``."""
    _parse_choice(NTT_ENV, mode, _MODES)
    with _forced_env(NTT_ENV, mode):
        yield


def describe() -> dict:
    """Probe report for humans and ``eval/run_all``: one flat dict.

    Forces resolution (unless ``RPU_NATIVE=0``) so the report reflects
    what the process would actually execute with.
    """
    mode = native_mode()
    kernels = active()
    features = cpu_features()
    interesting = sorted(
        f
        for f in features
        if f.startswith(("avx", "sse4", "fma", "neon", "asimd"))
    )
    cc = _compiler()
    tier, tier_flags = selected_tier()
    return {
        "mode": mode,
        "enabled": kernels is not None,
        "compiler": cc,
        "flags": _base_flags() + tier_flags,
        "tier": tier,
        "cpu_features": interesting,
        "cache_dir": str(_cache_dir()),
        "so_path": str(kernels.so_path) if kernels else None,
        "abi": ABI_VERSION if kernels else None,
        "has_ifma": kernels.has_ifma if kernels else None,
        "ntt_mode": ntt_mode(),
        "has_ntt": kernels.has_ntt if kernels else None,
        "error": _state["error"],
    }
