"""Compiled native limb kernels: build-on-demand, CPU-feature dispatched.

:mod:`repro.modmath.limb` expresses wide-modulus arithmetic as numpy
sweeps over 26-bit limb planes; every sweep is a full pass over memory.
``limb_kernels.c`` (shipped next to this module) fuses each LAW row
operation -- ``add_mod``/``sub_mod``, the schoolbook+Barrett ``mul_mod``
and the fused Cooley-Tukey butterfly ``bfly_ct`` -- into a single pass
per block of lanes.  This module turns that source into a loadable
backend without any build system: the C file is compiled with the host's
``cc`` into a content-addressed cache directory the first time it is
needed, bound over :mod:`ctypes`, and handed to
:class:`~repro.modmath.limb.LimbEngine`'s dispatch layer.

Dispatch policy (the ``RPU_NATIVE`` environment variable, validated on
first use exactly like ``RPU_VEC_MUL_MIN_DEGREE``):

* ``"auto"`` (default) -- probe the CPU and toolchain; use the compiled
  kernels when the build succeeds, fall back to numpy otherwise.
* ``"1"`` -- same probe/build, but a failure emits a one-line
  :class:`RuntimeWarning` naming the reason (the numpy fallback still
  engages -- the repo never hard-fails on a missing toolchain).
* ``"0"`` -- never build or load; pure numpy.

The build flags follow the probed CPU features: on an AVX-512 IFMA host
(the 52-bit limb-product instruction family HEXL-style HE libraries
target) the compiler is given the full ``-mavx512*`` license, otherwise
AVX2 or plain ``-O3``.  The compiled object is keyed by a fingerprint of
the source, compiler and flags, so feature or source changes rebuild
automatically and concurrent processes (shard-pool workers) can share
one cache entry; compiles land under a temporary name and are published
with an atomic ``os.replace``.

Bit-exactness is *tested*, not assumed: ``tests/test_native.py`` fuzzes
every exported kernel against the numpy engine (which is itself pinned
to the scalar oracle), including the worst-case Barrett slack inputs.
"""

from __future__ import annotations

import contextlib
import ctypes
import functools
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path

import numpy as np

__all__ = [
    "MAX_K",
    "NATIVE_ENV",
    "NativeKernels",
    "active",
    "cpu_features",
    "describe",
    "forced_mode",
    "reset",
]

NATIVE_ENV = "RPU_NATIVE"
"""Environment override for the native-kernel dispatch: ``0``/``1``/``auto``."""

CACHE_DIR_ENV = "RPU_NATIVE_CACHE_DIR"
"""Environment override for the build-cache directory."""

CC_ENV = "RPU_NATIVE_CC"
"""Environment override for the C compiler (used by the failure-injection
tests, and by deployments that pin a toolchain)."""

ABI_VERSION = 1
"""Expected ``rpu_limb_abi()`` of a loaded object; mismatches rebuild."""

MAX_K = 16
"""Widest limb count the compiled kernels accept (matches ``MAX_K`` in
``limb_kernels.c``); wider engines stay on the numpy path."""

_SOURCE = Path(__file__).with_name("limb_kernels.c")

_MODES = ("0", "1", "auto")


@functools.lru_cache(maxsize=8)
def _parse_mode(raw: str) -> str:
    """Validate one ``RPU_NATIVE`` setting (parsed once per value)."""
    if raw not in _MODES:
        raise ValueError(
            f"{NATIVE_ENV} must be one of {_MODES}, got {raw!r}"
        )
    return raw


def native_mode() -> str:
    """The requested dispatch mode: ``"0"``, ``"1"`` or ``"auto"``."""
    raw = os.environ.get(NATIVE_ENV)
    if raw is None:
        return "auto"
    return _parse_mode(raw)


@functools.lru_cache(maxsize=1)
def cpu_features() -> frozenset[str]:
    """Lower-case CPU feature flags probed from the host (may be empty).

    Linux exposes them in ``/proc/cpuinfo``; other platforms simply
    return an empty set, which selects the portable ``-O3`` build.
    """
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith(("flags", "features")):
                    return frozenset(line.split(":", 1)[1].split())
    except OSError:
        pass
    return frozenset()


def _compiler() -> str | None:
    """The C compiler to use, or ``None`` when the host has none."""
    override = os.environ.get(CC_ENV)
    if override:
        return override
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def _feature_flags(features: frozenset[str]) -> list[str]:
    """Per-CPU-feature compile flags: widest probed SIMD family wins."""
    if "avx512ifma" in features:
        return [
            "-mavx512f",
            "-mavx512vl",
            "-mavx512dq",
            "-mavx512ifma",
        ]
    if "avx512f" in features:
        return ["-mavx512f", "-mavx512dq"]
    if "avx2" in features:
        return ["-mavx2"]
    if "neon" in features or "asimd" in features:
        return []  # aarch64 SIMD is baseline; -O3 already uses it
    return []


def _base_flags() -> list[str]:
    return ["-O3", "-funroll-loops", "-fPIC", "-shared", "-std=c11"]


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    home = Path.home()
    base = (
        home / ".cache"
        if os.access(home, os.W_OK)
        else Path(tempfile.gettempdir())
    )
    return base / f"rpu_native-{os.getuid() if hasattr(os, 'getuid') else 0}"


class NativeBuildError(RuntimeError):
    """The compiled backend could not be produced or loaded."""


def _fingerprint(source: str, cc: str, flags: list[str]) -> str:
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(cc.encode())
    h.update(" ".join(flags).encode())
    h.update(f"abi{ABI_VERSION}".encode())
    h.update(platform.machine().encode())
    return h.hexdigest()[:16]


def _build(cc: str, flags: list[str]) -> Path:
    """Compile (or reuse) the shared object; returns its path."""
    try:
        source = _SOURCE.read_text()
    except OSError as exc:
        raise NativeBuildError(f"kernel source unreadable: {exc}") from exc
    digest = _fingerprint(source, cc, flags)
    out_dir = _cache_dir() / digest
    so_path = out_dir / "limb_kernels.so"
    if so_path.exists():
        return so_path
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise NativeBuildError(f"cache dir unwritable: {exc}") from exc
    tmp = out_dir / f".build-{os.getpid()}.so"
    cmd = [cc, *flags, "-o", str(tmp), str(_SOURCE)]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeBuildError(f"compiler failed to run: {exc}") from exc
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout or "").strip().splitlines()
        detail = tail[-1] if tail else f"exit {proc.returncode}"
        raise NativeBuildError(f"compile failed: {detail}")
    os.replace(tmp, so_path)  # atomic publish; concurrent builders race safely
    return so_path


_PTR = ctypes.POINTER(ctypes.c_int64)
_I64 = ctypes.c_int64


class NativeKernels:
    """ctypes binding over the compiled row kernels.

    Stateless beyond the loaded library handle: the C kernels keep all
    scratch on the stack, so one instance serves every engine and
    thread.  Methods return ``None`` for shapes the compiled backend
    does not cover (the caller then stays on numpy).
    """

    def __init__(self, so_path: Path) -> None:
        self.so_path = so_path
        lib = ctypes.CDLL(str(so_path))
        lib.rpu_limb_abi.restype = ctypes.c_int
        if lib.rpu_limb_abi() != ABI_VERSION:
            raise NativeBuildError(
                f"ABI mismatch: {so_path} reports {lib.rpu_limb_abi()}, "
                f"expected {ABI_VERSION}"
            )
        lib.rpu_limb_add_mod.argtypes = [_PTR] * 4 + [_I64] * 3
        lib.rpu_limb_add_mod.restype = ctypes.c_int
        lib.rpu_limb_sub_mod.argtypes = [_PTR] * 4 + [_I64] * 3
        lib.rpu_limb_sub_mod.restype = ctypes.c_int
        lib.rpu_limb_mul_mod.argtypes = [_PTR] * 6 + [_I64] * 6
        lib.rpu_limb_mul_mod.restype = ctypes.c_int
        lib.rpu_limb_bfly_ct.argtypes = [_PTR] * 8 + [_I64] * 6
        lib.rpu_limb_bfly_ct.restype = ctypes.c_int
        self._lib = lib

    @staticmethod
    def _ptr(a: np.ndarray):
        return a.ctypes.data_as(_PTR)

    def _prepare(self, engine, arrays):
        """Broadcast operands to one C-contiguous shape; derive rows/lanes.

        Returns ``(ops, shape, rows, lanes)`` or ``None`` when the
        compiled backend cannot take this call (too many limbs, or a
        multi-row engine fed operands without the row axis).
        """
        if engine.k > MAX_K or engine._km > MAX_K + 1:
            return None
        shape = np.broadcast_shapes(*[a.shape for a in arrays])
        rows = len(engine.moduli)
        if rows > 1:
            if len(shape) < 2 or shape[1] != rows:
                return None
            lanes = 1
            for d in shape[2:]:
                lanes *= d
        else:
            lanes = 1
            for d in shape[1:]:
                lanes *= d
        if lanes == 0:
            return None
        ops = []
        for a in arrays:
            if a.shape != shape:
                a = np.broadcast_to(a, shape)
            if not a.flags["C_CONTIGUOUS"]:
                a = np.ascontiguousarray(a)
            ops.append(a)
        return ops, shape, rows, lanes

    def add_mod(self, engine, a, b):
        prep = self._prepare(engine, (a, b))
        if prep is None:
            return None
        (a, b), shape, rows, lanes = prep
        qext, _, _ = engine._native_consts()
        out = np.empty(shape, dtype=np.int64)
        rc = self._lib.rpu_limb_add_mod(
            self._ptr(a), self._ptr(b), self._ptr(out), self._ptr(qext),
            engine.k, rows, lanes,
        )
        return out if rc == 0 else None

    def sub_mod(self, engine, a, b):
        prep = self._prepare(engine, (a, b))
        if prep is None:
            return None
        (a, b), shape, rows, lanes = prep
        qext, _, _ = engine._native_consts()
        out = np.empty(shape, dtype=np.int64)
        rc = self._lib.rpu_limb_sub_mod(
            self._ptr(a), self._ptr(b), self._ptr(out), self._ptr(qext),
            engine.k, rows, lanes,
        )
        return out if rc == 0 else None

    def mul_mod(self, engine, a, b):
        prep = self._prepare(engine, (a, b))
        if prep is None:
            return None
        (a, b), shape, rows, lanes = prep
        qext, q2ext, mu = engine._native_consts()
        out = np.empty(shape, dtype=np.int64)
        rc = self._lib.rpu_limb_mul_mod(
            self._ptr(a), self._ptr(b), self._ptr(out),
            self._ptr(qext), self._ptr(q2ext), self._ptr(mu),
            engine.k, mu.shape[1], engine._s1, engine._s2, rows, lanes,
        )
        return out if rc == 0 else None

    def bfly_ct(self, engine, a, b, w):
        prep = self._prepare(engine, (a, b, w))
        if prep is None:
            return None
        (a, b, w), shape, rows, lanes = prep
        qext, q2ext, mu = engine._native_consts()
        hi = np.empty(shape, dtype=np.int64)
        lo = np.empty(shape, dtype=np.int64)
        rc = self._lib.rpu_limb_bfly_ct(
            self._ptr(a), self._ptr(b), self._ptr(w),
            self._ptr(hi), self._ptr(lo),
            self._ptr(qext), self._ptr(q2ext), self._ptr(mu),
            engine.k, mu.shape[1], engine._s1, engine._s2, rows, lanes,
        )
        return (hi, lo) if rc == 0 else None


# -- the process-wide dispatch decision -------------------------------------

_state: dict = {"kernels": None, "resolved": False, "error": None}


def _resolve() -> NativeKernels | None:
    cc = _compiler()
    if cc is None:
        raise NativeBuildError("no C compiler on PATH (cc/gcc/clang)")
    flags = _base_flags() + _feature_flags(cpu_features())
    return NativeKernels(_build(cc, flags))


def active() -> NativeKernels | None:
    """The loaded native backend, or ``None`` (numpy fallback).

    Resolved at most once per process per :func:`reset`; a failed
    probe/build memoizes the fallback and emits exactly one one-line
    warning so long-lived servers do not re-attempt (or re-log) per op.
    """
    mode = native_mode()
    if mode == "0":
        return None
    if _state["resolved"]:
        return _state["kernels"]
    try:
        kernels = _resolve()
    except NativeBuildError as exc:
        _state["error"] = str(exc)
        kernels = None
        warnings.warn(
            f"RPU native limb kernels unavailable ({exc}); "
            "using the numpy fallback",
            RuntimeWarning,
            stacklevel=2,
        )
    _state["kernels"] = kernels
    _state["resolved"] = True
    return kernels


def reset() -> None:
    """Forget the resolved backend and parsed env (tests re-probe)."""
    _state.update(kernels=None, resolved=False, error=None)
    _parse_mode.cache_clear()
    cpu_features.cache_clear()


@contextlib.contextmanager
def forced_mode(mode: str):
    """Temporarily pin ``RPU_NATIVE`` to ``mode``, re-resolving the backend.

    Bench/test helper for comparing the two dispatch targets in one
    process; the prior environment is restored (and the backend
    re-resolved) on exit, so the surrounding process returns to its
    configured dispatch.
    """
    _parse_mode(mode)  # reject bad modes before touching process state
    prev = os.environ.get(NATIVE_ENV)
    os.environ[NATIVE_ENV] = mode
    reset()
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(NATIVE_ENV, None)
        else:
            os.environ[NATIVE_ENV] = prev
        reset()


def describe() -> dict:
    """Probe report for humans and ``eval/run_all``: one flat dict.

    Forces resolution (unless ``RPU_NATIVE=0``) so the report reflects
    what the process would actually execute with.
    """
    mode = native_mode()
    kernels = active()
    features = cpu_features()
    interesting = sorted(
        f
        for f in features
        if f.startswith(("avx", "sse4", "fma", "neon", "asimd"))
    )
    cc = _compiler()
    return {
        "mode": mode,
        "enabled": kernels is not None,
        "compiler": cc,
        "flags": _base_flags() + _feature_flags(features),
        "cpu_features": interesting,
        "cache_dir": str(_cache_dir()),
        "so_path": str(kernels.so_path) if kernels else None,
        "abi": ABI_VERSION if kernels else None,
        "error": _state["error"],
    }
