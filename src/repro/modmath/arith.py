"""Scalar modular arithmetic over Z_q.

These functions are the software semantics of the RPU LAW engine's datapath
units: one modular adder, one modular subtractor, one modular multiplier and
two comparators per HPLE (paper section IV-B1).  Operands are canonical
residues in ``[0, q)``; every function validates that contract because the
hardware, too, only guarantees correct results for canonical inputs.
"""

from __future__ import annotations


def _check_operand(value: int, modulus: int) -> None:
    if modulus <= 1:
        raise ValueError(f"modulus must be > 1, got {modulus}")
    if not 0 <= value < modulus:
        raise ValueError(f"operand {value} not a canonical residue mod {modulus}")


def mod_add(a: int, b: int, q: int) -> int:
    """Modular addition: the LAW adder (one conditional subtract of q)."""
    _check_operand(a, q)
    _check_operand(b, q)
    s = a + b
    return s - q if s >= q else s


def mod_sub(a: int, b: int, q: int) -> int:
    """Modular subtraction: the LAW subtractor (one conditional add of q)."""
    _check_operand(a, q)
    _check_operand(b, q)
    d = a - b
    return d + q if d < 0 else d


def mod_neg(a: int, q: int) -> int:
    """Additive inverse in Z_q."""
    _check_operand(a, q)
    return 0 if a == 0 else q - a


def mod_mul(a: int, b: int, q: int) -> int:
    """Modular multiplication (the 128-bit LAW multiplier's semantics)."""
    _check_operand(a, q)
    _check_operand(b, q)
    return a * b % q


def mod_pow(base: int, exponent: int, q: int) -> int:
    """Modular exponentiation by repeated squaring."""
    _check_operand(base % q, q)
    if exponent < 0:
        return mod_pow(mod_inv(base, q), -exponent, q)
    return pow(base, exponent, q)


def mod_inv(a: int, q: int) -> int:
    """Multiplicative inverse via the extended Euclidean algorithm.

    Raises:
        ZeroDivisionError: if ``a`` is not invertible mod ``q``.
    """
    _check_operand(a, q)
    if a == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse")
    # Extended Euclid, iterative to keep recursion limits out of the picture.
    old_r, r = a, q
    old_s, s = 1, 0
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    if old_r != 1:
        raise ZeroDivisionError(f"{a} is not invertible mod {q} (gcd={old_r})")
    return old_s % q
