"""Montgomery-domain modular multiplication.

The alternative multiplier IP considered in the RPU design space (the paper
sweeps multiplier latency and initiation interval in Fig. 7 without fixing
one implementation).  Montgomery multiplication trades two conversions for a
division-free inner loop, which hardware implements as a (latency, II)
pipelined unit; :class:`MontgomeryDomain` provides the bit-accurate
semantics used by tests to cross-check :class:`~repro.modmath.barrett.\
BarrettReducer` and the plain ``%`` operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.modmath.arith import mod_inv


@dataclass
class MontgomeryDomain:
    """Montgomery arithmetic for an odd modulus q with R = 2**r_bits.

    Attributes:
        modulus: odd modulus q.
        r_bits: bit width of R; must satisfy R > q.  Defaults to the word
            size rounded up to q's bit length.
    """

    modulus: int
    r_bits: int = 0
    r_mask: int = field(init=False)
    q_inv_neg: int = field(init=False)
    r2: int = field(init=False)

    def __post_init__(self) -> None:
        if self.modulus <= 2 or self.modulus % 2 == 0:
            raise ValueError("Montgomery requires an odd modulus > 2")
        if self.r_bits == 0:
            self.r_bits = self.modulus.bit_length()
        if (1 << self.r_bits) <= self.modulus:
            raise ValueError("R must exceed the modulus")
        r = 1 << self.r_bits
        self.r_mask = r - 1
        # -q^{-1} mod R
        self.q_inv_neg = (-mod_inv(self.modulus % r, r)) % r
        self.r2 = (r * r) % self.modulus

    def to_mont(self, a: int) -> int:
        """Map a canonical residue into the Montgomery domain (a*R mod q)."""
        return self.redc(a * self.r2)

    def from_mont(self, a_mont: int) -> int:
        """Map a Montgomery-domain value back to a canonical residue."""
        return self.redc(a_mont)

    def redc(self, t: int) -> int:
        """Montgomery reduction REDC(t) = t * R^{-1} mod q for t < q*R."""
        if not 0 <= t < self.modulus << self.r_bits:
            raise ValueError("REDC input out of range [0, q*R)")
        m = (t & self.r_mask) * self.q_inv_neg & self.r_mask
        u = (t + m * self.modulus) >> self.r_bits
        return u - self.modulus if u >= self.modulus else u

    def mul(self, a_mont: int, b_mont: int) -> int:
        """Multiply two Montgomery-domain values, result in the domain."""
        return self.redc(a_mont * b_mont)

    def mod_mul(self, a: int, b: int) -> int:
        """Plain-domain modular multiply routed through Montgomery form."""
        return self.from_mont(self.mul(self.to_mont(a), self.to_mont(b)))

    def operation_counts(self) -> dict[str, int]:
        """Primitive-op cost of one in-domain multiply (energy modelling)."""
        return {"wide_mul": 3, "wide_addsub": 2}
