"""Multi-limb fixed-width modular arithmetic: wide moduli on int64 lanes.

The vectorized backends in this repo are exact because numpy object lanes
carry arbitrary-precision ints -- but object lanes run at Python speed, so
the paper's 128-bit moduli used to miss the whole point of vectorizing.
This module keeps wide arithmetic in C: every value is split into ``k``
base-2^26 limbs stored along the *leading* axis of an int64 array
(``limbs[i]`` is the i-th limb plane of the whole operand, a contiguous
array), and all operations -- modular add/sub/mul with Barrett reduction
-- are short, fixed sequences of int64 array sweeps.

Why 26-bit limbs: the schoolbook product of two limbs is at most 52 bits,
which leaves 11 bits of int64 headroom to *accumulate* partial products
and carries.  (The obvious alternative, ~42-bit limbs, would overflow
int64 on the very first limb product; fixed-width lanes force narrow
limbs, exactly as on the AVX/AIE datapaths the related NTT repos target.)

Representation invariants:

* limbs ``0..k-2`` always lie in ``[0, 2^26)``;
* the top limb is *signed* and carries the sign of the whole value, so
  the representation round-trips arbitrary Python ints (the FEMU's VDM
  may legally hold non-canonical data -- it only faults on *compute*);
* canonical residues of a :class:`LimbEngine` additionally satisfy
  ``0 <= value < q``, which every engine operation preserves.

The reduction is Barrett's (HAC 14.42) -- the same shift/multiply/correct
family :class:`repro.modmath.barrett.BarrettReducer` models for the RPU's
pipelined multiplier -- but with both shift amounts rounded to limb
boundaries, so "shifting" is just slicing the limb axis and the whole
multiply never leaves int64 lanes.  Widening the shifts only loosens the
quotient estimate by a bounded amount; three conditional subtracts retire
the slack (``test_modmath`` fuzzes the worst cases).

:class:`LimbEngine` is built either for one modulus (the FEMU case: all
batch lanes share the instruction's MRF modulus) or for a stack of moduli
of equal bit length (the RNS-tower case: row ``i`` of the operands
reduces mod ``moduli[i]``).  Equal bit lengths let every row share the
Barrett slice points, so a whole tower stack still executes as one
sequence of array sweeps.

Canonicality: every engine operation takes canonical residues
(``0 <= x < q``) and returns canonical residues -- the correction
subtracts at the end of each reduction guarantee it.  That closure is
what the FEMU's *canonicality ledger*
(:mod:`repro.femu.vectorized`) builds on: once an operand is known
canonical, engine results are canonical by construction and need no
range scan; only fresh caller data pays :meth:`LimbEngine.noncanonical_mask`.
Engines are shared across executors via :func:`cached_engine` (same
modulus, same instance); their constants are immutable and their scratch
arenas are *thread-local*, so concurrently executing kernels -- e.g. two
coalesced serving batches flushing in parallel threads -- cannot corrupt
each other's staging buffers.

Native dispatch: every LAW operation first offers itself to the compiled
row kernels (:mod:`repro.modmath.native`, built on demand from
``limb_kernels.c``), which fuse the numpy sweep sequences into one pass
per block of lanes.  The numpy bodies below remain the always-available
bit-exact fallback -- ``RPU_NATIVE=0`` forces them, and any shape the
compiled backend declines (k > 16 limbs, empty operands) silently stays
here.  ``tests/test_native.py`` fuzzes the two paths against each other
for every exported kernel.
"""

from __future__ import annotations

import functools
import threading
from collections.abc import Sequence

import numpy as np

from repro.modmath import native

LIMB_BITS = 26
"""Limb width: 2*26 = 52-bit limb products leave int64 accumulation room."""

LIMB_MASK = (1 << LIMB_BITS) - 1

_STAGE_BITS = 2 * LIMB_BITS  # int<->limb staging moves two limbs at a time
_STAGE_BASE = 1 << _STAGE_BITS


def limbs_for_bits(bits: int) -> int:
    """Limb count covering ``bits``-bit magnitudes plus one carry/headroom bit."""
    return max(1, -(-(bits + 1) // LIMB_BITS))


def decompose(values, k: int) -> np.ndarray:
    """Split ints into ``k`` limb planes along a new *leading* axis.

    Accepts nested sequences of Python ints, object arrays, or integer
    arrays; negative values keep their sign in the (signed) top limb.
    Object input is staged through 52-bit int64 pieces so only
    ``~k/2`` array operations touch Python ints.  Raises ``ValueError``
    when a value does not fit ``k`` limbs.
    """
    arr = (
        values
        if isinstance(values, np.ndarray)
        else np.array(values, dtype=object)
    )
    out = np.empty((k,) + arr.shape, dtype=np.int64)
    try:
        if arr.dtype != object:
            cur = arr.astype(np.int64)
            for i in range(k - 1):
                out[i] = cur & LIMB_MASK
                cur = cur >> LIMB_BITS
            out[k - 1] = cur
            return out
        pairs = (k - 1) // 2
        cur = arr
        stage = np.empty(arr.shape, dtype=np.int64)
        for p in range(pairs):
            # Two object passes per two limbs; the sub-split is int64 work.
            stage[...] = cur & (_STAGE_BASE - 1)
            out[2 * p] = stage & LIMB_MASK
            out[2 * p + 1] = stage >> LIMB_BITS
            cur = cur >> _STAGE_BITS
        if k - 2 * pairs == 1:
            out[k - 1] = cur
        else:
            out[k - 2] = cur & LIMB_MASK
            out[k - 1] = cur >> LIMB_BITS
    except OverflowError as exc:
        raise ValueError(
            f"value too wide for {k} limbs of {LIMB_BITS} bits"
        ) from exc
    return out


def compose(limbs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`decompose`: an object array of exact Python ints."""
    k = limbs.shape[0]
    if limbs.ndim == 1:
        # Single element: numpy turns 0-d object accumulators back into
        # int64 scalars mid-expression (silently wrapping wide values),
        # so compose one element in plain Python.
        return sum(int(limbs[i]) << (LIMB_BITS * i) for i in range(k))
    pairs = (k - 1) // 2
    if k - 2 * pairs == 1:
        acc = limbs[k - 1].astype(object)
    else:
        acc = (limbs[k - 1].astype(object) << LIMB_BITS) + limbs[k - 2]
    for p in range(pairs - 1, -1, -1):
        piece = limbs[2 * p] + (limbs[2 * p + 1] << LIMB_BITS)  # pure int64
        acc = (acc << _STAGE_BITS) + piece
    return acc


def pack52(planes: np.ndarray) -> np.ndarray:
    """Pack base-2^26 limb planes into base-2^52 planes (leading axis).

    ``(k, ...)`` canonical-residue planes become ``(ceil(k/2), ...)``
    planes of paired limbs -- the representation the compiled
    ``rpu_limb_ntt52`` kernel (AVX-512 IFMA ``madd52`` chains) works in.
    Used host-side to pre-pack twiddle tables; the kernel itself packs
    and unpacks its data planes in place.
    """
    k = planes.shape[0]
    k2 = (k + 1) // 2
    out = np.empty((k2,) + planes.shape[1:], dtype=np.int64)
    for i in range(k2):
        if 2 * i + 1 < k:
            out[i] = planes[2 * i] | (planes[2 * i + 1] << LIMB_BITS)
        else:
            out[i] = planes[2 * i]
    return out


def widen(limbs: np.ndarray, new_k: int) -> np.ndarray:
    """Re-spread the signed top limb so the value occupies ``new_k`` limbs."""
    k = limbs.shape[0]
    if new_k <= k:
        return limbs
    out = np.empty((new_k,) + limbs.shape[1:], dtype=np.int64)
    out[: k - 1] = limbs[: k - 1]
    top = limbs[k - 1]
    for i in range(k - 1, new_k - 1):
        out[i] = top & LIMB_MASK
        top = top >> LIMB_BITS
    out[new_k - 1] = top
    return out


def _carry(z: np.ndarray, cbuf: np.ndarray | None = None, wrap: bool = False) -> np.ndarray:
    """Normalize limb planes in place: all but the top to [0, 2^26).

    ``x & LIMB_MASK`` equals ``x - (x >> 26 << 26)`` for *any* sign (two's
    complement), so one masked AND plus an arithmetic-shift carry per limb
    normalizes positive and negative intermediates alike.  ``wrap=True``
    also masks the top limb, i.e. computes the value modulo ``2^(26*m)``
    -- the truncated arithmetic the Barrett tail relies on.  ``cbuf`` is
    an optional lane-shaped scratch plane (avoids per-step allocation).
    """
    m = z.shape[0]
    if cbuf is None:
        cbuf = np.empty(z.shape[1:], dtype=np.int64)
    for i in range(m - 1):
        np.right_shift(z[i], LIMB_BITS, out=cbuf)
        z[i] &= LIMB_MASK
        z[i + 1] += cbuf
    if wrap:
        z[m - 1] &= LIMB_MASK
    return z


def _school_into(
    out: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    pbuf: np.ndarray,
    cbuf: np.ndarray,
    low_clip: int = 0,
    loose_below: int = 0,
) -> np.ndarray:
    """Normalized limb product of nonnegative operands, into scratch.

    Truncation to ``out``'s plane count is exact for the high planes: the
    dropped positions only ever *feed* planes at or above ``out``'s top.
    ``low_clip`` skips product terms landing strictly below that plane;
    planes at or above ``low_clip + 2`` then underestimate the true
    product by at most one carry unit (the skipped mass is bounded by one
    unit of plane ``low_clip + 1``), which Barrett absorbs as one extra
    correction.  Carries are propagated from ``low_clip`` upward only.
    """
    ka = a.shape[0]
    m = out.shape[0]
    first = True
    for j in range(min(b.shape[0], m)):
        lo = max(j, low_clip)
        w = min(ka, m - j) - (lo - j)
        if w <= 0:
            continue
        if first:
            out[:lo] = 0
            np.multiply(b[j], a[lo - j : lo - j + w], out=out[lo : lo + w])
            out[lo + w :] = 0
            first = False
        else:
            np.multiply(b[j], a[lo - j : lo - j + w], out=pbuf[:w])
            out[lo : lo + w] += pbuf[:w]
    start = low_clip
    if loose_below > start:
        # One vectorized pass bounds the low planes (< 2^30) instead of
        # normalizing them exactly; consumers slicing above ``loose_below``
        # then underestimate the true floor by well under one quotient
        # unit, which the Barrett corrections already absorb.
        seg = out[start:loose_below]
        cw = pbuf[: seg.shape[0]]
        np.right_shift(seg, LIMB_BITS, out=cw)
        seg &= LIMB_MASK
        out[start + 1 : loose_below + 1] += cw
        start = loose_below
    for i in range(start, m - 1):
        np.right_shift(out[i], LIMB_BITS, out=cbuf)
        out[i] &= LIMB_MASK
        out[i + 1] += cbuf
    return out


class LimbEngine:
    """Modular arithmetic over limb planes for one modulus or a tower stack.

    Args:
        moduli: a single modulus (int), or a sequence of moduli sharing one
            bit length (one per leading data row of the operands).
        k: limb count; defaults to the smallest count with carry headroom.
            All operands of one engine share this layout.

    Operand convention: ``(k, rows, lanes)`` int64 arrays.  For a single
    modulus the constants are ``(k, 1, 1)`` and broadcast over any rows x
    lanes (the FEMU's batch x vlen registers); for L moduli they are
    ``(k, L, 1)`` and operands must carry L rows.
    """

    def __init__(self, moduli: int | Sequence[int], k: int | None = None):
        mods = [moduli] if isinstance(moduli, int) else list(moduli)
        if not mods:
            raise ValueError("need at least one modulus")
        if any(q <= 1 for q in mods):
            raise ValueError("moduli must be > 1")
        self.qbits = mods[0].bit_length()
        if any(q.bit_length() != self.qbits for q in mods):
            raise ValueError(
                "a vector LimbEngine needs moduli of equal bit length "
                "(shared Barrett slice points); group rows by bit length"
            )
        self.moduli = tuple(mods)
        self.k = k if k is not None else limbs_for_bits(self.qbits)
        if self.k < limbs_for_bits(self.qbits):
            raise ValueError(
                f"{self.k} limbs cannot hold a {self.qbits}-bit modulus "
                "with carry headroom"
            )
        # Limb-aligned Barrett: z1 = z >> B*s1 and q_hat = (z1*mu) >> B*s2
        # are plain slices of the limb axis.  s1 <= (qbits-1)/B and
        # B*(s1+s2) >= 2*qbits keep the classic quotient bound; rounding
        # the shifts to limb boundaries costs at most one extra correction.
        self._s1 = (self.qbits - 1) // LIMB_BITS
        self._s2 = -(-(2 * self.qbits - self._s1 * LIMB_BITS) // LIMB_BITS)
        sigma = (self._s1 + self._s2) * LIMB_BITS
        mus = [(1 << sigma) // q for q in mods]
        self._km = limbs_for_bits(max(mu.bit_length() for mu in mus))
        self.q_limbs = decompose(mods, self.k)[:, :, None]
        self.q_ext = decompose(mods, self.k + 1)[:, :, None]
        self.q2_ext = decompose([2 * q for q in mods], self.k + 1)[:, :, None]
        self.mu_limbs = decompose(mus, self._km)[:, :, None]
        # +-q stacked, for the fused butterfly's joint hi/lo correction.
        self.qpm = np.stack(
            [decompose([-q for q in mods], self.k), decompose(mods, self.k)]
        )[:, :, :, None]
        # 2-D (lane-flattened) constant views, usable when L == 1.
        self._flat_consts = (
            tuple(
                c.reshape(c.shape[0], 1)
                for c in (self.q_limbs, self.q_ext, self.q2_ext, self.mu_limbs)
            )
            + (self.qpm.reshape(2, self.k, 1),)
            if len(mods) == 1
            else None
        )
        # Per-thread scratch: engines are shared via cached_engine (same
        # modulus => same instance), and the serving loop runs coalesced
        # batches in concurrent threads -- shared arenas would race.
        self._scratch = threading.local()
        self._native_rows = None  # lazy (L, k+1)/(L, k+1)/(L, km) consts
        self._native_rows52 = None  # lazy base-2^52 Barrett constant rows

    # -- native dispatch ---------------------------------------------------
    def _native_consts(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Row-major constant blocks for the compiled kernels (cached).

        The C side wants per-row contiguous ``q``/``2q`` (k+1 limbs,
        zero top) and ``mu`` (km limbs); built once per engine, shared
        by every call and thread (read-only after publication).
        """
        consts = self._native_rows
        if consts is None:
            consts = tuple(
                np.ascontiguousarray(c[:, :, 0].T)
                for c in (self.q_ext, self.q2_ext, self.mu_limbs)
            )
            self._native_rows = consts
        return consts

    def _native_consts52(self):
        """Base-2^52 Barrett constant rows for the packed IFMA kernel.

        Same limb-aligned Barrett derivation as the 26-bit engine, with
        the limb base doubled: ``s1' = (qbits-1)//52``, ``s2'`` its
        ``2*qbits`` companion, ``mu' = 2^(52*(s1'+s2')) // q``.  Returns
        ``(q52ext, q2_52ext, mu52, k2, km2, s1p, s2p)`` with the arrays
        row-major ``(L, planes)`` contiguous, or ``None`` when the
        packed representation cannot hold this engine (never for
        canonical k <= MAX_K engines; kept as a guard).
        """
        consts = self._native_rows52
        if consts is None:
            bits2 = 2 * LIMB_BITS
            k2 = (self.k + 1) // 2
            s1p = (self.qbits - 1) // bits2
            s2p = -(-(2 * self.qbits - s1p * bits2) // bits2)
            mus = [(1 << (s1p + s2p) * bits2) // q for q in self.moduli]
            km2 = max(
                1, -(-(max(mu.bit_length() for mu in mus) + 1) // bits2)
            )

            def rows(values, count):
                mask = (1 << bits2) - 1
                data = []
                for v in values:
                    cur, row = int(v), []
                    for _ in range(count):
                        row.append(cur & mask)
                        cur >>= bits2
                    if cur:
                        return None
                    data.append(row)
                return np.array(data, dtype=np.int64)

            q52 = rows(self.moduli, k2 + 1)
            q252 = rows([2 * q for q in self.moduli], k2 + 1)
            mu52 = rows(mus, km2)
            if q52 is None or q252 is None or mu52 is None:
                consts = (None,)
            else:
                consts = (q52, q252, mu52, k2, km2, s1p, s2p)
            self._native_rows52 = consts
        return None if consts[0] is None else consts

    def ntt(
        self,
        a: np.ndarray,
        tw: np.ndarray,
        n_inv: np.ndarray | None = None,
        *,
        inverse: bool = False,
        tw52: np.ndarray | None = None,
        n_inv52: np.ndarray | None = None,
    ) -> bool:
        """Run every stage of a batch of NTTs in one compiled call.

        ``a`` is the C-contiguous ``(k, rows, n)`` plane block of
        canonical residues, mutated *in place* (natural -> bit-reversed
        for the forward transform; the inverse folds the ``n^{-1}``
        sweep in).  ``tw`` is the ``(k, L, n)`` limb decomposition of
        the full ``psi_rev`` (forward) / ``psi_inv_rev`` (inverse)
        table; ``n_inv`` the ``(k, L, 1)`` decomposition of the scale
        (inverse only).  ``tw52``/``n_inv52`` are optional pre-packed
        base-2^52 copies (see :func:`pack52`) so cached callers skip
        the per-call pack.

        Returns ``True`` when a compiled whole-transform kernel ran;
        ``False`` sends the caller to the per-stage path (wrong shape,
        kernels unavailable, or ``RPU_NATIVE_NTT=0``).
        """
        kernels = native.active()
        if (
            kernels is None
            or not kernels.has_ntt
            or not native.ntt_enabled()
            or self.k > native.MAX_K
        ):
            return False
        if (
            a.ndim != 3
            or a.dtype != np.int64
            or not a.flags["C_CONTIGUOUS"]
        ):
            return False
        k, rows, n = a.shape
        if k != self.k or rows < 1 or n < 2 or n & (n - 1):
            return False
        L = len(self.moduli)
        crows = 1 if L == 1 else L
        if crows != 1 and rows != crows:
            return False
        if inverse and n_inv is None:
            return False
        if kernels.has_ifma and n >= 16:
            c52 = self._native_consts52()
            if c52 is not None:
                q52, q252, mu52, k2, km2, s1p, s2p = c52
                if tw52 is None:
                    tw52 = pack52(np.ascontiguousarray(tw))
                if inverse:
                    if n_inv52 is None:
                        n_inv52 = pack52(np.ascontiguousarray(n_inv))
                    ninv_rows = np.ascontiguousarray(n_inv52[:, :, 0].T)
                else:
                    ninv_rows = q52  # any valid pointer; unread forward
                if kernels.ntt52(
                    a, np.ascontiguousarray(tw52), ninv_rows, q52, q252,
                    mu52, self.k, km2, s1p, s2p, rows, n, crows, inverse,
                ):
                    return True
        qext, q2ext, mu = self._native_consts()
        if inverse:
            ninv_rows = np.ascontiguousarray(n_inv[:, :, 0].T)
        else:
            ninv_rows = qext  # any valid pointer; unread forward
        return kernels.ntt26(
            a, np.ascontiguousarray(tw), ninv_rows, qext, q2ext, mu,
            self.k, mu.shape[1], self._s1, self._s2, rows, n, crows,
            inverse,
        )

    @property
    def native_path(self) -> str:
        """Which backend this engine's ops dispatch to right now:
        ``"native"`` (compiled row kernels) or ``"numpy"`` (sweeps)."""
        if self.k <= native.MAX_K and native.active() is not None:
            return "native"
        return "numpy"

    @property
    def ntt_native(self) -> bool:
        """Whether :meth:`ntt` would run compiled for this engine."""
        kernels = native.active()
        return (
            kernels is not None
            and kernels.has_ntt
            and native.ntt_enabled()
            and self.k <= native.MAX_K
        )

    def _buf(self, shape: tuple[int, ...]) -> dict[str, np.ndarray]:
        """Per-lane-shape scratch arena: reused across calls so the hot
        loop allocates only its results (no mmap/page-fault churn).
        Thread-local, so concurrently executing kernels that share this
        engine never write into each other's staging buffers."""
        cache = self._scratch.__dict__.setdefault("bufs", {})
        bufs = cache.get(shape)
        if bufs is None:
            k = self.k

            def plane(count: int) -> np.ndarray:
                return np.empty((count,) + shape, dtype=np.int64)

            bufs = {
                "z": plane(2 * k),
                "t": plane(self._s2 + k + 1),
                "t2": plane(k + 1),
                "d": plane(k + 1),
                "s": plane(2 * k),  # stacked hi/lo staging for bfly_ct
                "p": plane(2 * k),
                "c": np.empty(shape, dtype=np.int64),
                "c2": np.empty((2,) + shape, dtype=np.int64),
                "m": np.empty((1,) + shape, dtype=bool),
                "m2": np.empty((2,) + shape, dtype=bool),
            }
            cache[shape] = bufs
        return bufs

    def _prep(self, *arrays: np.ndarray):
        """Collapse trailing lane axes to one (views) when row-free.

        Engines for a single modulus broadcast their constants over every
        lane, so equal-shaped contiguous operands can be viewed as
        ``(planes, lanes)`` -- fewer dimensions for every ufunc in the hot
        loop, and 2-D constants to match.  Multi-row engines (or mixed
        shapes, e.g. a broadcast scalar operand) keep the 3-D layout.

        Returns ``(arrays..., constants, lane_shape_or_None)`` where
        ``constants`` is ``(q, q_ext, q2_ext, mu, qpm)`` in the matching
        dimensionality and the final element is the original lane shape to
        restore on results (``None`` when nothing was flattened).
        """
        if len(self.moduli) == 1:
            if all(a.ndim == 2 for a in arrays):
                return arrays + (self._flat_consts, None)
            if all(
                a.ndim > 2
                and a.flags["C_CONTIGUOUS"]
                and a.shape == arrays[0].shape
                for a in arrays
            ):
                flat = tuple(a.reshape(a.shape[0], -1) for a in arrays)
                return flat + (self._flat_consts, arrays[0].shape[1:])
        consts3 = (self.q_limbs, self.q_ext, self.q2_ext, self.mu_limbs, self.qpm)
        return arrays + (consts3, None)

    # -- I/O helpers -------------------------------------------------------
    def encode(self, values) -> np.ndarray:
        """Decompose caller ints into this engine's limb layout."""
        return decompose(values, self.k)

    # -- canonicality ------------------------------------------------------
    def noncanonical_mask(self, a: np.ndarray) -> np.ndarray:
        """Boolean mask (per lane) of values outside ``[0, q)``.

        The explicit top-limb range test keeps the verdict exact even for
        absurdly wide caller data whose top limb would overflow the
        borrow-propagation arithmetic (such values are trivially >= q).
        """
        top = a[-1]
        d = _carry(a - self.q_limbs)
        return (top < 0) | (top > LIMB_MASK) | (d[-1] >= 0)

    # -- the LAW operations ------------------------------------------------
    # Each public op dispatches to the compiled row kernels when they are
    # available and accept the shape; the numpy bodies below are the
    # always-available bit-exact fallback (and the differential oracle
    # the native path is fuzzed against).

    def add_mod(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lanewise ``(a + b) mod q``; operands canonical."""
        kernels = native.active()
        if kernels is not None:
            out = kernels.add_mod(self, a, b)
            if out is not None:
                return out
        return self._add_mod_numpy(a, b)

    def sub_mod(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lanewise ``(a - b) mod q``; operands canonical."""
        kernels = native.active()
        if kernels is not None:
            out = kernels.sub_mod(self, a, b)
            if out is not None:
                return out
        return self._sub_mod_numpy(a, b)

    def mul_mod(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lanewise ``a * b mod q`` via schoolbook product + Barrett."""
        kernels = native.active()
        if kernels is not None:
            out = kernels.mul_mod(self, a, b)
            if out is not None:
                return out
        return self._mul_mod_numpy(a, b)

    def bfly_ct(self, a: np.ndarray, b: np.ndarray, w: np.ndarray):
        """Cooley-Tukey butterfly ``(a + b*w, a - b*w) mod q`` fused."""
        kernels = native.active()
        if kernels is not None:
            out = kernels.bfly_ct(self, a, b, w)
            if out is not None:
                return out
        return self._bfly_ct_numpy(a, b, w)

    def _add_mod_numpy(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lanewise ``(a + b) mod q``; operands canonical."""
        a, b, (q, *_), lanes = self._prep(a, b)
        shape = np.broadcast_shapes(a.shape[1:], b.shape[1:])
        bufs = self._buf(shape)
        s, c, mask = bufs["s"][: self.k], bufs["c"], bufs["m"]
        np.add(a, b, out=s)
        _carry(s, c)
        out = np.empty((self.k,) + shape, dtype=np.int64)
        np.subtract(s, q, out=out)
        _carry(out, c)
        np.less(out[-1:], 0, out=mask)
        np.copyto(out, s, where=mask)
        return out if lanes is None else out.reshape((self.k,) + lanes)

    def _sub_mod_numpy(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lanewise ``(a - b) mod q``; operands canonical."""
        a, b, (q, *_), lanes = self._prep(a, b)
        shape = np.broadcast_shapes(a.shape[1:], b.shape[1:])
        bufs = self._buf(shape)
        s, c, mask = bufs["s"][: self.k], bufs["c"], bufs["m"]
        out = np.empty((self.k,) + shape, dtype=np.int64)
        np.subtract(a, b, out=out)
        _carry(out, c)
        np.less(out[-1:], 0, out=mask)
        np.add(out, q, out=s)
        _carry(s, c)
        np.copyto(out, s, where=mask)
        return out if lanes is None else out.reshape((self.k,) + lanes)

    def _mul_mod_numpy(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lanewise ``a * b mod q`` via schoolbook product + Barrett."""
        a, b, consts, lanes = self._prep(a, b)
        shape = np.broadcast_shapes(a.shape[1:], b.shape[1:])
        bufs = self._buf(shape)
        _school_into(bufs["z"], a, b, bufs["p"], bufs["c"])
        out = self._reduce(bufs, consts, shape)
        return out if lanes is None else out.reshape((self.k,) + lanes)

    def _reduce(self, bufs, consts, shape, out=None) -> np.ndarray:
        """Barrett-reduce the product in ``bufs["z"]`` (consumed) to [0, q).

        ``q_hat`` underestimates ``z // q`` by at most 3 (two classic
        floor losses, one for limb-aligned slicing plus the clipped
        low product planes), so the remainder lies in ``[0, 4q)``: one
        conditional subtract of ``2q`` and one of ``q`` finish.  The tail
        is computed modulo ``2^(26*(k+1)) > 4q``, so truncated (wrapped)
        limb arithmetic is exact.
        """
        _, q_ext, q2_ext, mu, _ = consts
        p, c, mask = bufs["p"], bufs["c"], bufs["m"]
        k = self.k
        m = k + 1
        z = bufs["z"]
        t = bufs["t"]
        _school_into(t, z[self._s1 :], mu, p, c, low_clip=max(0, self._s2 - 2))
        q_hat = t[self._s2 :]
        for j in range(k):  # q_ext's top limb is always zero
            w = min(m - j, k)  # q_hat < q, so its top plane is zero too
            np.multiply(q_ext[j], q_hat[:w], out=p[:w])
            z[j : j + w] -= p[:w]
        r = z[:m]
        _carry(r, c, wrap=True)
        d = bufs["d"]
        np.subtract(r, q2_ext, out=d)
        _carry(d, c)
        np.less(d[-1:], 0, out=mask)
        np.copyto(d, r, where=mask)
        if out is None:
            out = np.empty((m,) + shape, dtype=np.int64)
        np.subtract(d, q_ext, out=out)
        _carry(out, c)
        np.less(out[-1:], 0, out=mask)
        np.copyto(out, d, where=mask)
        return out[:k]

    def _bfly_ct_numpy(self, a: np.ndarray, b: np.ndarray, w: np.ndarray):
        """Cooley-Tukey butterfly ``(a + b*w, a - b*w) mod q`` fused.

        One Barrett-reduced product, then both outputs corrected jointly:
        hi/lo are stacked so the carry chains and the +-q correction run
        as one sequence of double-width sweeps instead of two.
        """
        a, b, w, consts, lanes = self._prep(a, b, w)
        shape = np.broadcast_shapes(
            a.shape[1:], np.broadcast_shapes(b.shape[1:], w.shape[1:])
        )
        bufs = self._buf(shape)
        qpm = consts[4]
        k = self.k
        _school_into(
            bufs["z"], b, w, bufs["p"], bufs["c"], loose_below=self._s1
        )
        t = self._reduce(bufs, consts, shape, out=bufs["t2"])
        s = bufs["s"][: 2 * k].reshape((2, k) + shape)
        np.add(a, t, out=s[0])
        np.subtract(a, t, out=s[1])
        c2 = bufs["c2"]
        for i in range(k - 1):
            np.right_shift(s[:, i], LIMB_BITS, out=c2)
            s[:, i] &= LIMB_MASK
            s[:, i + 1] += c2
        out = np.empty((2, k) + shape, dtype=np.int64)
        np.add(s, qpm, out=out)
        for i in range(k - 1):
            np.right_shift(out[:, i], LIMB_BITS, out=c2)
            out[:, i] &= LIMB_MASK
            out[:, i + 1] += c2
        m2 = bufs["m2"]
        # hi keeps the sum unless subtracting q stays nonnegative; lo keeps
        # the difference unless it was negative (then the +q branch wins).
        np.less(out[0:1, -1], 0, out=m2[0:1])
        np.greater_equal(s[1:2, -1], 0, out=m2[1:2])
        np.copyto(out, s, where=m2[:, None])
        hi, lo = out[0], out[1]
        if lanes is not None:
            hi = hi.reshape((k,) + lanes)
            lo = lo.reshape((k,) + lanes)
        return hi, lo


@functools.lru_cache(maxsize=None)
def cached_engine(moduli: int | tuple[int, ...], k: int | None = None) -> LimbEngine:
    """Shared :class:`LimbEngine` instances (constants + scratch arenas).

    Engines are immutable constants plus reusable scratch, so sharing them
    across executors/transforms keeps buffers warm and avoids rebuilding
    Barrett tables for every kernel pass.
    """
    mods = moduli if isinstance(moduli, int) else list(moduli)
    return LimbEngine(mods, k=k)


def grouped_engines(
    moduli: Sequence[int], k: int | None = None
) -> list[tuple[LimbEngine, np.ndarray]]:
    """Partition row moduli into vector engines by shared bit length.

    Returns ``(engine, row_indices)`` pairs covering every input row; RNS
    bases generated by :class:`repro.rns.basis.RnsBasis` land in a single
    group (equal limb widths), so the common case is one engine for the
    whole tower stack.
    """
    groups: dict[int, list[int]] = {}
    for i, q in enumerate(moduli):
        groups.setdefault(q.bit_length(), []).append(i)
    return [
        (cached_engine(tuple(moduli[i] for i in idx), k), np.array(idx))
        for _, idx in sorted(groups.items())
    ]
