/* Fused multi-limb modular row kernels: the compiled twin of LimbEngine.
 *
 * repro.modmath.limb runs wide-modulus arithmetic as sequences of numpy
 * sweeps over 26-bit limb planes; every sweep is one pass over memory.
 * These kernels fuse each LAW operation into a single pass per row --
 * the schoolbook product, the limb-aligned Barrett reduction and the
 * correction subtracts all happen in registers/L1 for a block of lanes
 * before the next block is touched.  repro.modmath.native compiles this
 * file on demand (cc -O3 plus whatever SIMD the host advertises) and
 * binds it over ctypes; the numpy path remains the bit-exact fallback.
 *
 * Layout contract (exactly LimbEngine's):
 *   - operands are int64 limb planes, plane-major: limb i of element
 *     (row r, lane x) lives at data[i*rows*lanes + r*lanes + x];
 *   - limbs 0..k-2 of canonical operands lie in [0, 2^26); the top limb
 *     is signed;
 *   - per-row constants: qext = q in k+1 limbs (top limb zero),
 *     q2ext = 2q in k+1 limbs, mu = floor(2^(26*(s1+s2))/q) in km limbs.
 *
 * Why the arithmetic cannot overflow an int64 lane: limb products are
 * at most 52 bits and every accumulation position sums at most
 * 2*MAX_K = 32 of them plus one carry, staying under 2^58.  That is the
 * same headroom argument the numpy engine's docstring makes; k is
 * capped at MAX_K so the bound is enforced, not assumed.
 *
 * Kernels return 0 on success and -1 for unsupported shapes (k out of
 * range); the Python dispatch layer treats nonzero as "use numpy".
 * All state is on the stack -- the kernels are reentrant, so the
 * serving loop's concurrent batch flushes need no locking.
 */

#include <stdint.h>

#define LIMB_BITS 26
#define LIMB_MASK ((int64_t)0x3ffffff)
#define MAX_K 16
#define BLK 16 /* lanes per block: two AVX-512 int64 vectors (measured best) */

typedef int64_t i64;

/* ----------------------------------------------------------------- */
/* Block primitives: nv <= BLK lanes, limb planes in local arrays.    */
/* ----------------------------------------------------------------- */

/* z[0..2k-1] = a*b, schoolbook, then one carry pass so every plane but
 * the (zero) top is in [0, 2^26).  a/b are strided operand pointers. */
static inline void school_block(i64 z[][BLK], const i64 *a, const i64 *b,
                                long stride, int k, int nv) {
  for (int p = 0; p < 2 * k; p++)
    for (int v = 0; v < nv; v++)
      z[p][v] = 0;
  for (int i = 0; i < k; i++) {
    const i64 *ai = a + (long)i * stride;
    for (int j = 0; j < k; j++) {
      const i64 *bj = b + (long)j * stride;
      i64 *zp = z[i + j];
      for (int v = 0; v < nv; v++)
        zp[v] += ai[v] * bj[v];
    }
  }
  for (int p = 0; p < 2 * k - 1; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = z[p][v] >> LIMB_BITS;
      z[p][v] &= LIMB_MASK;
      z[p + 1][v] += c;
    }
}

/* Conditionally subtract the (m-limb, nonnegative) constant c from r:
 * r -= c unless that would go negative.  Branch-free select per lane. */
static inline void cond_sub_block(i64 r[][BLK], const i64 *c, int m, int nv) {
  i64 d[MAX_K + 2][BLK];
  for (int v = 0; v < nv; v++)
    d[0][v] = r[0][v] - c[0];
  for (int p = 0; p + 1 < m; p++)
    for (int v = 0; v < nv; v++) {
      i64 br = d[p][v] >> LIMB_BITS;
      d[p][v] &= LIMB_MASK;
      d[p + 1][v] = r[p + 1][v] - c[p + 1] + br;
    }
  for (int p = 0; p < m; p++)
    for (int v = 0; v < nv; v++)
      r[p][v] = (d[m - 1][v] < 0) ? r[p][v] : d[p][v];
}

/* Barrett-reduce the normalized 2k-limb product in z to canonical
 * r[0..k-1].  Same limb-aligned shift points as LimbEngine._reduce
 * (slicing the limb axis at s1 and s2), but the quotient product is
 * computed exactly, so the remainder lands in [0, 4q) at worst; the
 * 2q-then-q conditional subtracts retire the slack exactly as the
 * numpy engine does. */
static inline void barrett_block(i64 z[][BLK], i64 r[][BLK], const i64 *qext,
                                 const i64 *q2ext, const i64 *mu, int k,
                                 int km, int s1, int s2, int nv) {
  i64 t[3 * MAX_K + 2][BLK];
  int m1 = 2 * k - s1; /* planes of z1 = z >> 26*s1 */
  int tm = m1 + km;
  int m = k + 1; /* tail planes: 2^(26*(k+1)) > 4q keeps wrap exact */
  for (int p = 0; p < tm; p++)
    for (int v = 0; v < nv; v++)
      t[p][v] = 0;
  for (int i = 0; i < m1; i++) {
    const i64 *zi = z[s1 + i];
    for (int j = 0; j < km; j++) {
      i64 *tp = t[i + j];
      const i64 muj = mu[j];
      for (int v = 0; v < nv; v++)
        tp[v] += zi[v] * muj;
    }
  }
  for (int p = 0; p + 1 < tm; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = t[p][v] >> LIMB_BITS;
      t[p][v] &= LIMB_MASK;
      t[p + 1][v] += c;
    }
  /* q_hat = t[s2..]; q_hat <= z/q < q so k planes suffice. */
  int mh = tm - s2;
  if (mh > k)
    mh = k;
  for (int p = 0; p < m; p++)
    for (int v = 0; v < nv; v++)
      r[p][v] = z[p][v];
  for (int j = 0; j < k; j++) {
    const i64 qj = qext[j];
    if (qj == 0)
      continue;
    for (int i = 0; i < mh && i + j < m; i++) {
      i64 *rp = r[i + j];
      const i64 *tp = t[s2 + i];
      for (int v = 0; v < nv; v++)
        rp[v] -= tp[v] * qj;
    }
  }
  for (int p = 0; p + 1 < m; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = r[p][v] >> LIMB_BITS;
      r[p][v] &= LIMB_MASK;
      r[p + 1][v] += c;
    }
  for (int v = 0; v < nv; v++)
    r[m - 1][v] &= LIMB_MASK; /* value mod 2^(26*m): wrap is exact */
  cond_sub_block(r, q2ext, m, nv);
  cond_sub_block(r, qext, m, nv);
}

/* hi = a + t (mod q): one carry pass then a conditional subtract. */
static inline void add_canon_block(i64 out[][BLK], const i64 *a, i64 t[][BLK],
                                   long stride, const i64 *qext, int k,
                                   int nv) {
  for (int i = 0; i < k; i++) {
    const i64 *ai = a + (long)i * stride;
    for (int v = 0; v < nv; v++)
      out[i][v] = ai[v] + t[i][v];
  }
  for (int v = 0; v < nv; v++)
    out[k][v] = 0;
  for (int p = 0; p < k; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = out[p][v] >> LIMB_BITS;
      out[p][v] &= LIMB_MASK;
      out[p + 1][v] += c;
    }
  cond_sub_block(out, qext, k + 1, nv);
}

/* lo = a - t (mod q): signed difference, +q where negative. */
static inline void sub_canon_block(i64 out[][BLK], const i64 *a, i64 t[][BLK],
                                   long stride, const i64 *qext, int k,
                                   int nv) {
  i64 s[MAX_K][BLK];
  for (int i = 0; i < k; i++) {
    const i64 *ai = a + (long)i * stride;
    for (int v = 0; v < nv; v++)
      out[i][v] = ai[v] - t[i][v];
  }
  for (int p = 0; p + 1 < k; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = out[p][v] >> LIMB_BITS;
      out[p][v] &= LIMB_MASK;
      out[p + 1][v] += c;
    }
  for (int i = 0; i < k; i++)
    for (int v = 0; v < nv; v++)
      s[i][v] = out[i][v] + qext[i];
  for (int p = 0; p + 1 < k; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = s[p][v] >> LIMB_BITS;
      s[p][v] &= LIMB_MASK;
      s[p + 1][v] += c;
    }
  for (int p = 0; p < k; p++)
    for (int v = 0; v < nv; v++)
      out[p][v] = (out[k - 1][v] < 0) ? s[p][v] : out[p][v];
}

static inline void load_block(i64 dst[][BLK], const i64 *src, long stride,
                              int k, int nv) {
  for (int i = 0; i < k; i++) {
    const i64 *si = src + (long)i * stride;
    for (int v = 0; v < nv; v++)
      dst[i][v] = si[v];
  }
}

static inline void store_block(i64 *dst, i64 src[][BLK], long stride, int k,
                               int nv) {
  for (int i = 0; i < k; i++) {
    i64 *di = dst + (long)i * stride;
    for (int v = 0; v < nv; v++)
      di[v] = src[i][v];
  }
}

/* ----------------------------------------------------------------- */
/* Exported row kernels.                                              */
/* ----------------------------------------------------------------- */

int rpu_limb_abi(void) { return 1; }

int rpu_limb_add_mod(const i64 *a, const i64 *b, i64 *out, const i64 *qext,
                     i64 k, i64 rows, i64 lanes) {
  if (k < 1 || k > MAX_K)
    return -1;
  long stride = (long)rows * lanes;
  for (long r = 0; r < rows; r++) {
    const i64 *qr = qext + r * (k + 1);
    for (long x = 0; x < lanes; x += BLK) {
      int nv = (lanes - x < BLK) ? (int)(lanes - x) : BLK;
      long off = r * lanes + x;
      i64 s[MAX_K + 2][BLK];
      for (int i = 0; i < k; i++) {
        const i64 *ai = a + (long)i * stride + off;
        const i64 *bi = b + (long)i * stride + off;
        for (int v = 0; v < nv; v++)
          s[i][v] = ai[v] + bi[v];
      }
      for (int v = 0; v < nv; v++)
        s[k][v] = 0;
      for (int p = 0; p < (int)k; p++)
        for (int v = 0; v < nv; v++) {
          i64 c = s[p][v] >> LIMB_BITS;
          s[p][v] &= LIMB_MASK;
          s[p + 1][v] += c;
        }
      cond_sub_block(s, qr, (int)k + 1, nv);
      store_block(out + off, s, stride, (int)k, nv);
    }
  }
  return 0;
}

int rpu_limb_sub_mod(const i64 *a, const i64 *b, i64 *out, const i64 *qext,
                     i64 k, i64 rows, i64 lanes) {
  if (k < 1 || k > MAX_K)
    return -1;
  long stride = (long)rows * lanes;
  for (long r = 0; r < rows; r++) {
    const i64 *qr = qext + r * (k + 1);
    for (long x = 0; x < lanes; x += BLK) {
      int nv = (lanes - x < BLK) ? (int)(lanes - x) : BLK;
      long off = r * lanes + x;
      i64 t[MAX_K][BLK];
      load_block(t, b + off, stride, (int)k, nv);
      i64 d[MAX_K + 2][BLK];
      sub_canon_block(d, a + off, t, stride, qr, (int)k, nv);
      store_block(out + off, d, stride, (int)k, nv);
    }
  }
  return 0;
}

int rpu_limb_mul_mod(const i64 *a, const i64 *b, i64 *out, const i64 *qext,
                     const i64 *q2ext, const i64 *mu, i64 k, i64 km, i64 s1,
                     i64 s2, i64 rows, i64 lanes) {
  if (k < 1 || k > MAX_K || km < 1 || km > MAX_K + 1 || s1 < 0 || s2 < 1)
    return -1;
  long stride = (long)rows * lanes;
  for (long r = 0; r < rows; r++) {
    const i64 *qr = qext + r * (k + 1);
    const i64 *q2r = q2ext + r * (k + 1);
    const i64 *mur = mu + r * km;
    for (long x = 0; x < lanes; x += BLK) {
      int nv = (lanes - x < BLK) ? (int)(lanes - x) : BLK;
      long off = r * lanes + x;
      i64 z[2 * MAX_K][BLK], red[MAX_K + 2][BLK];
      school_block(z, a + off, b + off, stride, (int)k, nv);
      barrett_block(z, red, qr, q2r, mur, (int)k, (int)km, (int)s1, (int)s2,
                    nv);
      store_block(out + off, red, stride, (int)k, nv);
    }
  }
  return 0;
}

/* The fused Cooley-Tukey butterfly: (a + b*w, a - b*w) mod q in one
 * pass -- twiddle product, Barrett reduction and both corrections
 * without materializing any intermediate plane in memory. */
int rpu_limb_bfly_ct(const i64 *a, const i64 *b, const i64 *w, i64 *hi,
                     i64 *lo, const i64 *qext, const i64 *q2ext, const i64 *mu,
                     i64 k, i64 km, i64 s1, i64 s2, i64 rows, i64 lanes) {
  if (k < 1 || k > MAX_K || km < 1 || km > MAX_K + 1 || s1 < 0 || s2 < 1)
    return -1;
  long stride = (long)rows * lanes;
  for (long r = 0; r < rows; r++) {
    const i64 *qr = qext + r * (k + 1);
    const i64 *q2r = q2ext + r * (k + 1);
    const i64 *mur = mu + r * km;
    for (long x = 0; x < lanes; x += BLK) {
      int nv = (lanes - x < BLK) ? (int)(lanes - x) : BLK;
      long off = r * lanes + x;
      i64 z[2 * MAX_K][BLK], t[MAX_K + 2][BLK];
      i64 h[MAX_K + 2][BLK], l[MAX_K + 2][BLK];
      school_block(z, b + off, w + off, stride, (int)k, nv);
      barrett_block(z, t, qr, q2r, mur, (int)k, (int)km, (int)s1, (int)s2,
                    nv);
      add_canon_block(h, a + off, t, stride, qr, (int)k, nv);
      sub_canon_block(l, a + off, t, stride, qr, (int)k, nv);
      store_block(hi + off, h, stride, (int)k, nv);
      store_block(lo + off, l, stride, (int)k, nv);
    }
  }
  return 0;
}
