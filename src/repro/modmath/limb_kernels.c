/* Fused multi-limb modular row kernels: the compiled twin of LimbEngine.
 *
 * repro.modmath.limb runs wide-modulus arithmetic as sequences of numpy
 * sweeps over 26-bit limb planes; every sweep is one pass over memory.
 * These kernels fuse each LAW operation into a single pass per row --
 * the schoolbook product, the limb-aligned Barrett reduction and the
 * correction subtracts all happen in registers/L1 for a block of lanes
 * before the next block is touched.  repro.modmath.native compiles this
 * file on demand (cc -O3 plus whatever SIMD the host advertises) and
 * binds it over ctypes; the numpy path remains the bit-exact fallback.
 *
 * Layout contract (exactly LimbEngine's):
 *   - operands are int64 limb planes, plane-major: limb i of element
 *     (row r, lane x) lives at data[i*rows*lanes + r*lanes + x];
 *   - limbs 0..k-2 of canonical operands lie in [0, 2^26); the top limb
 *     is signed;
 *   - per-row constants: qext = q in k+1 limbs (top limb zero),
 *     q2ext = 2q in k+1 limbs, mu = floor(2^(26*(s1+s2))/q) in km limbs.
 *
 * Why the arithmetic cannot overflow an int64 lane: limb products are
 * at most 52 bits and every accumulation position sums at most
 * 2*MAX_K = 32 of them plus one carry, staying under 2^58.  That is the
 * same headroom argument the numpy engine's docstring makes; k is
 * capped at MAX_K so the bound is enforced, not assumed.
 *
 * Kernels return 0 on success and -1 for unsupported shapes (k out of
 * range); the Python dispatch layer treats nonzero as "use numpy".
 * All state is on the stack -- the kernels are reentrant, so the
 * serving loop's concurrent batch flushes need no locking.
 */

#include <stdint.h>

#if defined(__AVX512IFMA__)
#include <immintrin.h>
#define HAVE_IFMA 1
#else
#define HAVE_IFMA 0
#endif

#define LIMB_BITS 26
#define LIMB_MASK ((int64_t)0x3ffffff)
#define MAX_K 16
#define BLK 16 /* lanes per block: two AVX-512 int64 vectors (measured best) */

/* Whole-transform kernel: lanes per cache-resident segment.  A segment
 * holds every stage with butterfly width 2t <= SPAN entirely in a stack
 * buffer, so the last log2(SPAN) stages of a forward transform (the
 * first of an inverse) touch main memory exactly twice. */
#define SPAN 64
#define HSPAN (SPAN / 2)

/* 52-bit packed domain (pairs of 26-bit limbs per lane). */
#define LIMB2_BITS 52
#define LIMB2_MASK ((int64_t)0xfffffffffffffLL)
#define MAX_K2 ((MAX_K + 1) / 2 + 1)

typedef int64_t i64;
typedef uint64_t u64;

/* The butterfly bodies already amortize their call over k^2 * BLK limb
 * products; keeping them out-of-line stops the stage/row drivers from
 * flattening into multi-megabyte functions (90s+ compiles under the
 * AVX-512 cost models). */
#if defined(__GNUC__)
#define NOINLINE __attribute__((noinline))
#else
#define NOINLINE
#endif

/* ----------------------------------------------------------------- */
/* Block primitives: nv <= BLK lanes, limb planes in local arrays.    */
/* ----------------------------------------------------------------- */

/* z[0..2k-1] = a*b, schoolbook, then one carry pass so every plane but
 * the (zero) top is in [0, 2^26).  a/b are strided operand pointers;
 * the strides are independent so a gathered block (stride HSPAN or BLK)
 * can multiply a full-plane operand (stride rows*lanes). */
static inline void school_block(i64 z[][BLK], const i64 *a, long astride,
                                const i64 *b, long bstride, int k, int nv) {
  for (int p = 0; p < 2 * k; p++)
    for (int v = 0; v < nv; v++)
      z[p][v] = 0;
  for (int i = 0; i < k; i++) {
    const i64 *ai = a + (long)i * astride;
    for (int j = 0; j < k; j++) {
      const i64 *bj = b + (long)j * bstride;
      i64 *zp = z[i + j];
      for (int v = 0; v < nv; v++)
        zp[v] += ai[v] * bj[v];
    }
  }
  for (int p = 0; p < 2 * k - 1; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = z[p][v] >> LIMB_BITS;
      z[p][v] &= LIMB_MASK;
      z[p + 1][v] += c;
    }
}

/* z[0..2k-1] = a * w where w is one k-limb scalar (a twiddle, n_inv):
 * every limb product is vector*constant, the whole-transform kernel's
 * hot multiply for stages with butterfly width >= BLK. */
static inline void school_vs_block(i64 z[][BLK], const i64 *a, long astride,
                                   const i64 *w, int k, int nv) {
  for (int p = 0; p < 2 * k; p++)
    for (int v = 0; v < nv; v++)
      z[p][v] = 0;
  for (int i = 0; i < k; i++) {
    const i64 *ai = a + (long)i * astride;
    for (int j = 0; j < k; j++) {
      const i64 wj = w[j];
      if (wj == 0)
        continue;
      i64 *zp = z[i + j];
      for (int v = 0; v < nv; v++)
        zp[v] += ai[v] * wj;
    }
  }
  for (int p = 0; p < 2 * k - 1; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = z[p][v] >> LIMB_BITS;
      z[p][v] &= LIMB_MASK;
      z[p + 1][v] += c;
    }
}

/* Conditionally subtract the (m-limb, nonnegative) constant c from r:
 * r -= c unless that would go negative.  Branch-free select per lane. */
static inline void cond_sub_block(i64 r[][BLK], const i64 *c, int m, int nv) {
  i64 d[MAX_K + 2][BLK];
  for (int v = 0; v < nv; v++)
    d[0][v] = r[0][v] - c[0];
  for (int p = 0; p + 1 < m; p++)
    for (int v = 0; v < nv; v++) {
      i64 br = d[p][v] >> LIMB_BITS;
      d[p][v] &= LIMB_MASK;
      d[p + 1][v] = r[p + 1][v] - c[p + 1] + br;
    }
  for (int p = 0; p < m; p++)
    for (int v = 0; v < nv; v++)
      r[p][v] = (d[m - 1][v] < 0) ? r[p][v] : d[p][v];
}

/* Barrett-reduce the normalized 2k-limb product in z to canonical
 * r[0..k-1].  Same limb-aligned shift points as LimbEngine._reduce
 * (slicing the limb axis at s1 and s2), but the quotient product is
 * computed exactly, so the remainder lands in [0, 4q) at worst; the
 * 2q-then-q conditional subtracts retire the slack exactly as the
 * numpy engine does. */
static inline void barrett_block(i64 z[][BLK], i64 r[][BLK], const i64 *qext,
                                 const i64 *q2ext, const i64 *mu, int k,
                                 int km, int s1, int s2, int nv) {
  i64 t[3 * MAX_K + 2][BLK];
  int m1 = 2 * k - s1; /* planes of z1 = z >> 26*s1 */
  int tm = m1 + km;
  int m = k + 1; /* tail planes: 2^(26*(k+1)) > 4q keeps wrap exact */
  for (int p = 0; p < tm; p++)
    for (int v = 0; v < nv; v++)
      t[p][v] = 0;
  for (int i = 0; i < m1; i++) {
    const i64 *zi = z[s1 + i];
    for (int j = 0; j < km; j++) {
      i64 *tp = t[i + j];
      const i64 muj = mu[j];
      for (int v = 0; v < nv; v++)
        tp[v] += zi[v] * muj;
    }
  }
  for (int p = 0; p + 1 < tm; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = t[p][v] >> LIMB_BITS;
      t[p][v] &= LIMB_MASK;
      t[p + 1][v] += c;
    }
  /* q_hat = t[s2..]; q_hat <= z/q < q so k planes suffice. */
  int mh = tm - s2;
  if (mh > k)
    mh = k;
  for (int p = 0; p < m; p++)
    for (int v = 0; v < nv; v++)
      r[p][v] = z[p][v];
  for (int j = 0; j < k; j++) {
    const i64 qj = qext[j];
    if (qj == 0)
      continue;
    for (int i = 0; i < mh && i + j < m; i++) {
      i64 *rp = r[i + j];
      const i64 *tp = t[s2 + i];
      for (int v = 0; v < nv; v++)
        rp[v] -= tp[v] * qj;
    }
  }
  for (int p = 0; p + 1 < m; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = r[p][v] >> LIMB_BITS;
      r[p][v] &= LIMB_MASK;
      r[p + 1][v] += c;
    }
  for (int v = 0; v < nv; v++)
    r[m - 1][v] &= LIMB_MASK; /* value mod 2^(26*m): wrap is exact */
  cond_sub_block(r, q2ext, m, nv);
  cond_sub_block(r, qext, m, nv);
}

/* hi = a + t (mod q): one carry pass then a conditional subtract. */
static inline void add_canon_block(i64 out[][BLK], const i64 *a, i64 t[][BLK],
                                   long stride, const i64 *qext, int k,
                                   int nv) {
  for (int i = 0; i < k; i++) {
    const i64 *ai = a + (long)i * stride;
    for (int v = 0; v < nv; v++)
      out[i][v] = ai[v] + t[i][v];
  }
  for (int v = 0; v < nv; v++)
    out[k][v] = 0;
  for (int p = 0; p < k; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = out[p][v] >> LIMB_BITS;
      out[p][v] &= LIMB_MASK;
      out[p + 1][v] += c;
    }
  cond_sub_block(out, qext, k + 1, nv);
}

/* lo = a - t (mod q): signed difference, +q where negative. */
static inline void sub_canon_block(i64 out[][BLK], const i64 *a, i64 t[][BLK],
                                   long stride, const i64 *qext, int k,
                                   int nv) {
  i64 s[MAX_K][BLK];
  for (int i = 0; i < k; i++) {
    const i64 *ai = a + (long)i * stride;
    for (int v = 0; v < nv; v++)
      out[i][v] = ai[v] - t[i][v];
  }
  for (int p = 0; p + 1 < k; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = out[p][v] >> LIMB_BITS;
      out[p][v] &= LIMB_MASK;
      out[p + 1][v] += c;
    }
  for (int i = 0; i < k; i++)
    for (int v = 0; v < nv; v++)
      s[i][v] = out[i][v] + qext[i];
  for (int p = 0; p + 1 < k; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = s[p][v] >> LIMB_BITS;
      s[p][v] &= LIMB_MASK;
      s[p + 1][v] += c;
    }
  for (int p = 0; p < k; p++)
    for (int v = 0; v < nv; v++)
      out[p][v] = (out[k - 1][v] < 0) ? s[p][v] : out[p][v];
}

static inline void load_block(i64 dst[][BLK], const i64 *src, long stride,
                              int k, int nv) {
  for (int i = 0; i < k; i++) {
    const i64 *si = src + (long)i * stride;
    for (int v = 0; v < nv; v++)
      dst[i][v] = si[v];
  }
}

static inline void store_block(i64 *dst, i64 src[][BLK], long stride, int k,
                               int nv) {
  for (int i = 0; i < k; i++) {
    i64 *di = dst + (long)i * stride;
    for (int v = 0; v < nv; v++)
      di[v] = src[i][v];
  }
}

/* ----------------------------------------------------------------- */
/* Exported row kernels.                                              */
/* ----------------------------------------------------------------- */

int rpu_limb_abi(void) { return 2; }

int rpu_limb_has_ifma(void) { return HAVE_IFMA; }

int rpu_limb_add_mod(const i64 *a, const i64 *b, i64 *out, const i64 *qext,
                     i64 k, i64 rows, i64 lanes) {
  if (k < 1 || k > MAX_K)
    return -1;
  long stride = (long)rows * lanes;
  for (long r = 0; r < rows; r++) {
    const i64 *qr = qext + r * (k + 1);
    for (long x = 0; x < lanes; x += BLK) {
      int nv = (lanes - x < BLK) ? (int)(lanes - x) : BLK;
      long off = r * lanes + x;
      i64 s[MAX_K + 2][BLK];
      for (int i = 0; i < k; i++) {
        const i64 *ai = a + (long)i * stride + off;
        const i64 *bi = b + (long)i * stride + off;
        for (int v = 0; v < nv; v++)
          s[i][v] = ai[v] + bi[v];
      }
      for (int v = 0; v < nv; v++)
        s[k][v] = 0;
      for (int p = 0; p < (int)k; p++)
        for (int v = 0; v < nv; v++) {
          i64 c = s[p][v] >> LIMB_BITS;
          s[p][v] &= LIMB_MASK;
          s[p + 1][v] += c;
        }
      cond_sub_block(s, qr, (int)k + 1, nv);
      store_block(out + off, s, stride, (int)k, nv);
    }
  }
  return 0;
}

int rpu_limb_sub_mod(const i64 *a, const i64 *b, i64 *out, const i64 *qext,
                     i64 k, i64 rows, i64 lanes) {
  if (k < 1 || k > MAX_K)
    return -1;
  long stride = (long)rows * lanes;
  for (long r = 0; r < rows; r++) {
    const i64 *qr = qext + r * (k + 1);
    for (long x = 0; x < lanes; x += BLK) {
      int nv = (lanes - x < BLK) ? (int)(lanes - x) : BLK;
      long off = r * lanes + x;
      i64 t[MAX_K][BLK];
      load_block(t, b + off, stride, (int)k, nv);
      i64 d[MAX_K + 2][BLK];
      sub_canon_block(d, a + off, t, stride, qr, (int)k, nv);
      store_block(out + off, d, stride, (int)k, nv);
    }
  }
  return 0;
}

int rpu_limb_mul_mod(const i64 *a, const i64 *b, i64 *out, const i64 *qext,
                     const i64 *q2ext, const i64 *mu, i64 k, i64 km, i64 s1,
                     i64 s2, i64 rows, i64 lanes) {
  if (k < 1 || k > MAX_K || km < 1 || km > MAX_K + 1 || s1 < 0 || s2 < 1)
    return -1;
  long stride = (long)rows * lanes;
  for (long r = 0; r < rows; r++) {
    const i64 *qr = qext + r * (k + 1);
    const i64 *q2r = q2ext + r * (k + 1);
    const i64 *mur = mu + r * km;
    for (long x = 0; x < lanes; x += BLK) {
      int nv = (lanes - x < BLK) ? (int)(lanes - x) : BLK;
      long off = r * lanes + x;
      i64 z[2 * MAX_K][BLK], red[MAX_K + 2][BLK];
      school_block(z, a + off, stride, b + off, stride, (int)k, nv);
      barrett_block(z, red, qr, q2r, mur, (int)k, (int)km, (int)s1, (int)s2,
                    nv);
      store_block(out + off, red, stride, (int)k, nv);
    }
  }
  return 0;
}

/* ----------------------------------------------------------------- */
/* Whole-transform NTT (26-bit limb domain).                          */
/*                                                                    */
/* One exported call runs every Cooley-Tukey stage of an n-point      */
/* transform over a row's limb planes.  Twiddle indexing follows      */
/* repro.ntt.reference exactly: stage t (butterfly distance) has      */
/* n/(2t) groups and group i uses table entry n/(2t) + i, for both    */
/* directions.  Stages with 2t <= SPAN run on a stack-resident        */
/* segment buffer, so each coefficient block crosses main memory      */
/* twice regardless of how many local stages touch it.                */
/* ----------------------------------------------------------------- */

/* CT butterfly, scalar twiddle: (u, v) <- (u + v*w, u - v*w) mod q. */
static NOINLINE void bfly_ct_w(i64 *u, i64 *v, long stride, const i64 *wl,
                             const i64 *qr, const i64 *q2r, const i64 *mur,
                             int k, int km, int s1, int s2, int nv) {
  i64 z[2 * MAX_K][BLK], t[MAX_K + 2][BLK];
  i64 h[MAX_K + 2][BLK], l[MAX_K + 2][BLK];
  school_vs_block(z, v, stride, wl, k, nv);
  barrett_block(z, t, qr, q2r, mur, k, km, s1, s2, nv);
  add_canon_block(h, u, t, stride, qr, k, nv);
  sub_canon_block(l, u, t, stride, qr, k, nv);
  store_block(u, h, stride, k, nv);
  store_block(v, l, stride, k, nv);
}

/* CT butterfly, per-lane twiddle operand (gathered small-t stages). */
static NOINLINE void bfly_ct_vv(i64 *u, i64 *v, const i64 *w, long stride,
                              long wstride, const i64 *qr, const i64 *q2r,
                              const i64 *mur, int k, int km, int s1, int s2,
                              int nv) {
  i64 z[2 * MAX_K][BLK], t[MAX_K + 2][BLK];
  i64 h[MAX_K + 2][BLK], l[MAX_K + 2][BLK];
  school_block(z, v, stride, w, wstride, k, nv);
  barrett_block(z, t, qr, q2r, mur, k, km, s1, s2, nv);
  add_canon_block(h, u, t, stride, qr, k, nv);
  sub_canon_block(l, u, t, stride, qr, k, nv);
  store_block(u, h, stride, k, nv);
  store_block(v, l, stride, k, nv);
}

/* GS butterfly, scalar twiddle: (u, v) <- (u + v, (u - v)*w) mod q. */
static NOINLINE void bfly_gs_w(i64 *u, i64 *v, long stride, const i64 *wl,
                             const i64 *qr, const i64 *q2r, const i64 *mur,
                             int k, int km, int s1, int s2, int nv) {
  i64 vb[MAX_K][BLK], sum[MAX_K + 2][BLK], dif[MAX_K + 2][BLK];
  i64 z[2 * MAX_K][BLK], l[MAX_K + 2][BLK];
  load_block(vb, v, stride, k, nv);
  add_canon_block(sum, u, vb, stride, qr, k, nv);
  sub_canon_block(dif, u, vb, stride, qr, k, nv);
  school_vs_block(z, &dif[0][0], BLK, wl, k, nv);
  barrett_block(z, l, qr, q2r, mur, k, km, s1, s2, nv);
  store_block(u, sum, stride, k, nv);
  store_block(v, l, stride, k, nv);
}

/* GS butterfly, per-lane twiddle operand. */
static NOINLINE void bfly_gs_vv(i64 *u, i64 *v, const i64 *w, long stride,
                              long wstride, const i64 *qr, const i64 *q2r,
                              const i64 *mur, int k, int km, int s1, int s2,
                              int nv) {
  i64 vb[MAX_K][BLK], sum[MAX_K + 2][BLK], dif[MAX_K + 2][BLK];
  i64 z[2 * MAX_K][BLK], l[MAX_K + 2][BLK];
  load_block(vb, v, stride, k, nv);
  add_canon_block(sum, u, vb, stride, qr, k, nv);
  sub_canon_block(dif, u, vb, stride, qr, k, nv);
  school_block(z, &dif[0][0], BLK, w, wstride, k, nv);
  barrett_block(z, l, qr, q2r, mur, k, km, s1, s2, nv);
  store_block(u, sum, stride, k, nv);
  store_block(v, l, stride, k, nv);
}

/* One stage (all groups) over a contiguous region of `len` lanes whose
 * global lane offset divided by 2t is `gbase`.  widx0 = n/(2t) + gbase
 * is the table index of the region's first group.  Stages with t < BLK
 * gather butterflies into contiguous half-region blocks so the block
 * primitives always sweep full vectors. */
static void stage26(i64 *dat, long stride, long len, long t, const i64 *twr,
                    long ts, long widx0, int gs, const i64 *qr,
                    const i64 *q2r, const i64 *mur, int k, int km, int s1,
                    int s2) {
  long groups = len / (2 * t);
  if (t >= BLK) {
    for (long g = 0; g < groups; g++) {
      long j1 = 2 * g * t;
      i64 wl[MAX_K];
      for (int i = 0; i < k; i++)
        wl[i] = twr[(long)i * ts + widx0 + g];
      for (long j = 0; j < t; j += BLK) {
        int nv = (t - j < BLK) ? (int)(t - j) : BLK;
        if (gs)
          bfly_gs_w(dat + j1 + j, dat + j1 + t + j, stride, wl, qr, q2r, mur,
                    k, km, s1, s2, nv);
        else
          bfly_ct_w(dat + j1 + j, dat + j1 + t + j, stride, wl, qr, q2r, mur,
                    k, km, s1, s2, nv);
      }
    }
    return;
  }
  i64 ub[MAX_K][HSPAN], vb[MAX_K][HSPAN], wb[MAX_K][HSPAN];
  long nb = len / 2;
  long idx = 0;
  for (long g = 0; g < groups; g++) {
    long j1 = 2 * g * t;
    for (long j = 0; j < t; j++, idx++)
      for (int i = 0; i < k; i++) {
        ub[i][idx] = dat[(long)i * stride + j1 + j];
        vb[i][idx] = dat[(long)i * stride + j1 + t + j];
        wb[i][idx] = twr[(long)i * ts + widx0 + g];
      }
  }
  for (long xb = 0; xb < nb; xb += BLK) {
    int nv = (nb - xb < BLK) ? (int)(nb - xb) : BLK;
    if (gs)
      bfly_gs_vv(&ub[0][xb], &vb[0][xb], &wb[0][xb], HSPAN, HSPAN, qr, q2r,
                 mur, k, km, s1, s2, nv);
    else
      bfly_ct_vv(&ub[0][xb], &vb[0][xb], &wb[0][xb], HSPAN, HSPAN, qr, q2r,
                 mur, k, km, s1, s2, nv);
  }
  idx = 0;
  for (long g = 0; g < groups; g++) {
    long j1 = 2 * g * t;
    for (long j = 0; j < t; j++, idx++)
      for (int i = 0; i < k; i++) {
        dat[(long)i * stride + j1 + j] = ub[i][idx];
        dat[(long)i * stride + j1 + t + j] = vb[i][idx];
      }
  }
}

/* out = in * w (scalar k-limb constant) mod q for one block: the
 * inverse transform's n^-1 scale. */
static NOINLINE void mul_vs_block(i64 *dat, long stride, const i64 *wl,
                                const i64 *qr, const i64 *q2r, const i64 *mur,
                                int k, int km, int s1, int s2, int nv) {
  i64 z[2 * MAX_K][BLK], red[MAX_K + 2][BLK];
  school_vs_block(z, dat, stride, wl, k, nv);
  barrett_block(z, red, qr, q2r, mur, k, km, s1, s2, nv);
  store_block(dat, red, stride, k, nv);
}

/* All log2(n) stages of one row's transform, in place.  Forward runs
 * the strided global stages first, then finishes each SPAN-lane
 * segment in a stack buffer; the inverse mirrors that (local stages
 * first, t ascending) and folds the n^-1 scale in before returning. */
static void ntt_row26(i64 *row, long ds, const i64 *twr, long ts,
                      const i64 *ninvr, const i64 *qr, const i64 *q2r,
                      const i64 *mur, int k, int km, int s1, int s2, long n,
                      int inverse) {
  long span = n < SPAN ? n : SPAN;
  i64 buf[MAX_K][SPAN];
  if (!inverse) {
    long t = n >> 1;
    for (; t >= span; t >>= 1)
      stage26(row, ds, n, t, twr, ts, n / (2 * t), 0, qr, q2r, mur, k, km,
              s1, s2);
    for (long off = 0; off < n; off += span) {
      for (int i = 0; i < k; i++)
        for (long v = 0; v < span; v++)
          buf[i][v] = row[(long)i * ds + off + v];
      for (long tt = t; tt >= 1; tt >>= 1)
        stage26(&buf[0][0], SPAN, span, tt, twr, ts,
                n / (2 * tt) + off / (2 * tt), 0, qr, q2r, mur, k, km, s1,
                s2);
      for (int i = 0; i < k; i++)
        for (long v = 0; v < span; v++)
          row[(long)i * ds + off + v] = buf[i][v];
    }
    return;
  }
  for (long off = 0; off < n; off += span) {
    for (int i = 0; i < k; i++)
      for (long v = 0; v < span; v++)
        buf[i][v] = row[(long)i * ds + off + v];
    for (long tt = 1; tt <= span / 2; tt <<= 1)
      stage26(&buf[0][0], SPAN, span, tt, twr, ts,
              n / (2 * tt) + off / (2 * tt), 1, qr, q2r, mur, k, km, s1, s2);
    for (int i = 0; i < k; i++)
      for (long v = 0; v < span; v++)
        row[(long)i * ds + off + v] = buf[i][v];
  }
  for (long t = span; t <= n / 2; t <<= 1)
    stage26(row, ds, n, t, twr, ts, n / (2 * t), 1, qr, q2r, mur, k, km, s1,
            s2);
  for (long x = 0; x < n; x += BLK) {
    int nv = (n - x < BLK) ? (int)(n - x) : BLK;
    mul_vs_block(row + x, ds, ninvr, qr, q2r, mur, k, km, s1, s2, nv);
  }
}

/* The fused Cooley-Tukey butterfly: (a + b*w, a - b*w) mod q in one
 * pass -- twiddle product, Barrett reduction and both corrections
 * without materializing any intermediate plane in memory. */
int rpu_limb_bfly_ct(const i64 *a, const i64 *b, const i64 *w, i64 *hi,
                     i64 *lo, const i64 *qext, const i64 *q2ext, const i64 *mu,
                     i64 k, i64 km, i64 s1, i64 s2, i64 rows, i64 lanes) {
  if (k < 1 || k > MAX_K || km < 1 || km > MAX_K + 1 || s1 < 0 || s2 < 1)
    return -1;
  long stride = (long)rows * lanes;
  for (long r = 0; r < rows; r++) {
    const i64 *qr = qext + r * (k + 1);
    const i64 *q2r = q2ext + r * (k + 1);
    const i64 *mur = mu + r * km;
    for (long x = 0; x < lanes; x += BLK) {
      int nv = (lanes - x < BLK) ? (int)(lanes - x) : BLK;
      long off = r * lanes + x;
      i64 z[2 * MAX_K][BLK], t[MAX_K + 2][BLK];
      i64 h[MAX_K + 2][BLK], l[MAX_K + 2][BLK];
      school_block(z, b + off, stride, w + off, stride, (int)k, nv);
      barrett_block(z, t, qr, q2r, mur, (int)k, (int)km, (int)s1, (int)s2,
                    nv);
      add_canon_block(h, a + off, t, stride, qr, (int)k, nv);
      sub_canon_block(l, a + off, t, stride, qr, (int)k, nv);
      store_block(hi + off, h, stride, (int)k, nv);
      store_block(lo + off, l, stride, (int)k, nv);
    }
  }
  return 0;
}

/* The whole-transform kernel: every stage of `rows` independent
 * n-point transforms in one call.  data is (k, rows, n) plane-major
 * and mutated in place; tw is (k, crows, n) holding the full psi_rev
 * (forward) / psi_inv_rev (inverse) table per constants row; ninv is
 * (crows, k) row-major (ignored on forward).  crows is 1 (one modulus
 * for every row, the batched executor) or rows (one modulus per row,
 * the RNS tower path).  Inputs must be canonical residues -- callers
 * pre-check, exactly as the numpy stage loop does. */
int rpu_limb_ntt(i64 *data, const i64 *tw, const i64 *ninv, const i64 *qext,
                 const i64 *q2ext, const i64 *mu, i64 k, i64 km, i64 s1,
                 i64 s2, i64 rows, i64 n, i64 crows, i64 inverse) {
  if (k < 1 || k > MAX_K || km < 1 || km > MAX_K + 1 || s1 < 0 || s2 < 1)
    return -1;
  if (n < 2 || (n & (n - 1)) || rows < 1 || (crows != 1 && crows != rows))
    return -1;
  long ds = (long)rows * n;
  long ts = (long)crows * n;
  for (long r = 0; r < rows; r++) {
    long cr = (crows == 1) ? 0 : r;
    ntt_row26(data + r * n, ds, tw + cr * n, ts, ninv + cr * k,
              qext + cr * (k + 1), q2ext + cr * (k + 1), mu + cr * km,
              (int)k, (int)km, (int)s1, (int)s2, n, (int)inverse);
  }
  return 0;
}

/* ----------------------------------------------------------------- */
/* 52-bit packed domain: pairs of 26-bit limbs per int64 lane.        */
/*                                                                    */
/* On avx512ifma hosts every limb product runs through the            */
/* _mm512_madd52{lo,hi}_epu64 chain -- half the limb count, one       */
/* instruction per 8-lane product half.  Elsewhere the same code      */
/* compiles through unsigned __int128, so the tier is buildable (and  */
/* differential-testable) everywhere; dispatch prefers it only when   */
/* rpu_limb_has_ifma() reports the intrinsics were compiled in.       */
/* Values are canonical residues in base 2^52: k2 = ceil(k/2) limbs,  */
/* all in [0, 2^52), so every madd52 operand is exact.                */
/* ----------------------------------------------------------------- */

/* zlo/zhi += lo52/hi52(a * b) for nv lanes, b a scalar.  The IFMA
 * path assumes nv is a multiple of 8; the ntt52 call sites only issue
 * full BLK blocks (n >= 16 is validated by the exported kernel). */
static inline void mac52_vs(i64 *zlo, i64 *zhi, const i64 *a, i64 b,
                            int nv) {
#if HAVE_IFMA
  __m512i vb = _mm512_set1_epi64(b);
  for (int v = 0; v < nv; v += 8) {
    __m512i va = _mm512_loadu_si512((const void *)(a + v));
    __m512i lo = _mm512_loadu_si512((const void *)(zlo + v));
    __m512i hi = _mm512_loadu_si512((const void *)(zhi + v));
    lo = _mm512_madd52lo_epu64(lo, va, vb);
    hi = _mm512_madd52hi_epu64(hi, va, vb);
    _mm512_storeu_si512((void *)(zlo + v), lo);
    _mm512_storeu_si512((void *)(zhi + v), hi);
  }
#else
  for (int v = 0; v < nv; v++) {
    unsigned __int128 p = (unsigned __int128)(u64)a[v] * (u64)b;
    zlo[v] += (i64)((u64)p & (u64)LIMB2_MASK);
    zhi[v] += (i64)(p >> LIMB2_BITS);
  }
#endif
}

/* Same, with a per-lane multiplier vector. */
static inline void mac52_vv(i64 *zlo, i64 *zhi, const i64 *a, const i64 *b,
                            int nv) {
#if HAVE_IFMA
  for (int v = 0; v < nv; v += 8) {
    __m512i va = _mm512_loadu_si512((const void *)(a + v));
    __m512i vb = _mm512_loadu_si512((const void *)(b + v));
    __m512i lo = _mm512_loadu_si512((const void *)(zlo + v));
    __m512i hi = _mm512_loadu_si512((const void *)(zhi + v));
    lo = _mm512_madd52lo_epu64(lo, va, vb);
    hi = _mm512_madd52hi_epu64(hi, va, vb);
    _mm512_storeu_si512((void *)(zlo + v), lo);
    _mm512_storeu_si512((void *)(zhi + v), hi);
  }
#else
  for (int v = 0; v < nv; v++) {
    unsigned __int128 p = (unsigned __int128)(u64)a[v] * (u64)b[v];
    zlo[v] += (i64)((u64)p & (u64)LIMB2_MASK);
    zhi[v] += (i64)(p >> LIMB2_BITS);
  }
#endif
}

/* Fold hi-half accumulators into the next column and normalize every
 * digit into [0, 2^52).  Accumulation headroom: each column sums at
 * most ~2*MAX_K2 values below 2^52 plus carries -- under 2^57. */
static inline void fold_carry52(i64 z[][BLK], i64 zh[][BLK], int planes,
                                int nv) {
  for (int p = planes - 1; p >= 1; p--)
    for (int v = 0; v < nv; v++)
      z[p][v] += zh[p - 1][v];
  for (int p = 0; p + 1 < planes; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = z[p][v] >> LIMB2_BITS;
      z[p][v] &= LIMB2_MASK;
      z[p + 1][v] += c;
    }
}

static inline void cond_sub52(i64 r[][BLK], const i64 *c, int m, int nv) {
  i64 d[MAX_K2 + 2][BLK];
  for (int v = 0; v < nv; v++)
    d[0][v] = r[0][v] - c[0];
  for (int p = 0; p + 1 < m; p++)
    for (int v = 0; v < nv; v++) {
      i64 br = d[p][v] >> LIMB2_BITS;
      d[p][v] &= LIMB2_MASK;
      d[p + 1][v] = r[p + 1][v] - c[p + 1] + br;
    }
  for (int p = 0; p < m; p++)
    for (int v = 0; v < nv; v++)
      r[p][v] = (d[m - 1][v] < 0) ? r[p][v] : d[p][v];
}

/* z[0..2k2-1] = a * w (scalar k2-limb constant), base-2^52 schoolbook. */
static inline void school52_vs(i64 z[][BLK], const i64 *a, long astride,
                               const i64 *w, int k2, int nv) {
  i64 zh[2 * MAX_K2][BLK];
  for (int p = 0; p < 2 * k2; p++)
    for (int v = 0; v < nv; v++) {
      z[p][v] = 0;
      zh[p][v] = 0;
    }
  for (int i = 0; i < k2; i++) {
    const i64 *ai = a + (long)i * astride;
    for (int j = 0; j < k2; j++) {
      if (w[j] == 0)
        continue;
      mac52_vs(&z[i + j][0], &zh[i + j][0], ai, w[j], nv);
    }
  }
  fold_carry52(z, zh, 2 * k2, nv);
}

/* z[0..2k2-1] = a * b with per-lane b, base-2^52 schoolbook. */
static inline void school52_vv(i64 z[][BLK], const i64 *a, long astride,
                               const i64 *b, long bstride, int k2, int nv) {
  i64 zh[2 * MAX_K2][BLK];
  for (int p = 0; p < 2 * k2; p++)
    for (int v = 0; v < nv; v++) {
      z[p][v] = 0;
      zh[p][v] = 0;
    }
  for (int i = 0; i < k2; i++)
    for (int j = 0; j < k2; j++)
      mac52_vv(&z[i + j][0], &zh[i + j][0], a + (long)i * astride,
               b + (long)j * bstride, nv);
  fold_carry52(z, zh, 2 * k2, nv);
}

/* Barrett in base 2^52: the same limb-aligned shift points as the
 * 26-bit version (s1' = (qbits-1)//52, s2' its companion), but the
 * q_hat*q product accumulates into its own lo/hi pair (madd52 has no
 * subtract form) and is then retired digitwise -- both sides are
 * taken mod 2^(52m), so the signed normalize is exact. */
static inline void barrett52(i64 z[][BLK], i64 r[][BLK], const i64 *qext,
                             const i64 *q2ext, const i64 *mu, int k2, int km2,
                             int s1, int s2, int nv) {
  i64 t[3 * MAX_K2 + 2][BLK], th[3 * MAX_K2 + 2][BLK];
  i64 pl[MAX_K2 + 2][BLK], ph[MAX_K2 + 2][BLK];
  int m1 = 2 * k2 - s1;
  int tm = m1 + km2;
  int m = k2 + 1;
  for (int p = 0; p < tm; p++)
    for (int v = 0; v < nv; v++) {
      t[p][v] = 0;
      th[p][v] = 0;
    }
  for (int i = 0; i < m1; i++)
    for (int j = 0; j < km2; j++) {
      if (mu[j] == 0)
        continue;
      mac52_vs(&t[i + j][0], &th[i + j][0], &z[s1 + i][0], mu[j], nv);
    }
  fold_carry52(t, th, tm, nv);
  int mh = tm - s2;
  if (mh > k2)
    mh = k2;
  for (int p = 0; p < m; p++)
    for (int v = 0; v < nv; v++) {
      pl[p][v] = 0;
      ph[p][v] = 0;
    }
  for (int j = 0; j < k2; j++) {
    if (qext[j] == 0)
      continue;
    for (int i = 0; i < mh && i + j < m; i++)
      mac52_vs(&pl[i + j][0], &ph[i + j][0], &t[s2 + i][0], qext[j], nv);
  }
  /* r = (z - q_hat*q) mod 2^(52m): fold hi halves (no carry pass --
   * the signed normalize below absorbs digit overflow), subtract,
   * normalize with arithmetic-shift carries, mask the top. */
  for (int p = m - 1; p >= 1; p--)
    for (int v = 0; v < nv; v++)
      pl[p][v] += ph[p - 1][v];
  for (int p = 0; p < m; p++)
    for (int v = 0; v < nv; v++)
      r[p][v] = z[p][v] - pl[p][v];
  for (int p = 0; p + 1 < m; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = r[p][v] >> LIMB2_BITS;
      r[p][v] &= LIMB2_MASK;
      r[p + 1][v] += c;
    }
  for (int v = 0; v < nv; v++)
    r[m - 1][v] &= LIMB2_MASK;
  cond_sub52(r, q2ext, m, nv);
  cond_sub52(r, qext, m, nv);
}

static inline void add_canon52(i64 out[][BLK], const i64 *a, i64 t[][BLK],
                               long stride, const i64 *qext, int k2, int nv) {
  for (int i = 0; i < k2; i++) {
    const i64 *ai = a + (long)i * stride;
    for (int v = 0; v < nv; v++)
      out[i][v] = ai[v] + t[i][v];
  }
  for (int v = 0; v < nv; v++)
    out[k2][v] = 0;
  for (int p = 0; p < k2; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = out[p][v] >> LIMB2_BITS;
      out[p][v] &= LIMB2_MASK;
      out[p + 1][v] += c;
    }
  cond_sub52(out, qext, k2 + 1, nv);
}

static inline void sub_canon52(i64 out[][BLK], const i64 *a, i64 t[][BLK],
                               long stride, const i64 *qext, int k2, int nv) {
  i64 s[MAX_K2][BLK];
  for (int i = 0; i < k2; i++) {
    const i64 *ai = a + (long)i * stride;
    for (int v = 0; v < nv; v++)
      out[i][v] = ai[v] - t[i][v];
  }
  for (int p = 0; p + 1 < k2; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = out[p][v] >> LIMB2_BITS;
      out[p][v] &= LIMB2_MASK;
      out[p + 1][v] += c;
    }
  for (int i = 0; i < k2; i++)
    for (int v = 0; v < nv; v++)
      s[i][v] = out[i][v] + qext[i];
  for (int p = 0; p + 1 < k2; p++)
    for (int v = 0; v < nv; v++) {
      i64 c = s[p][v] >> LIMB2_BITS;
      s[p][v] &= LIMB2_MASK;
      s[p + 1][v] += c;
    }
  for (int p = 0; p < k2; p++)
    for (int v = 0; v < nv; v++)
      out[p][v] = (out[k2 - 1][v] < 0) ? s[p][v] : out[p][v];
}

static inline void load52(i64 dst[][BLK], const i64 *src, long stride, int k2,
                          int nv) {
  for (int i = 0; i < k2; i++) {
    const i64 *si = src + (long)i * stride;
    for (int v = 0; v < nv; v++)
      dst[i][v] = si[v];
  }
}

static inline void store52(i64 *dst, i64 src[][BLK], long stride, int k2,
                           int nv) {
  for (int i = 0; i < k2; i++) {
    i64 *di = dst + (long)i * stride;
    for (int v = 0; v < nv; v++)
      di[v] = src[i][v];
  }
}

static NOINLINE void bfly52_ct_w(i64 *u, i64 *v, long stride, const i64 *wl,
                               const i64 *qr, const i64 *q2r, const i64 *mur,
                               int k2, int km2, int s1, int s2, int nv) {
  i64 z[2 * MAX_K2][BLK], t[MAX_K2 + 2][BLK];
  i64 h[MAX_K2 + 2][BLK], l[MAX_K2 + 2][BLK];
  school52_vs(z, v, stride, wl, k2, nv);
  barrett52(z, t, qr, q2r, mur, k2, km2, s1, s2, nv);
  add_canon52(h, u, t, stride, qr, k2, nv);
  sub_canon52(l, u, t, stride, qr, k2, nv);
  store52(u, h, stride, k2, nv);
  store52(v, l, stride, k2, nv);
}

static NOINLINE void bfly52_ct_vv(i64 *u, i64 *v, const i64 *w, long stride,
                                long wstride, const i64 *qr, const i64 *q2r,
                                const i64 *mur, int k2, int km2, int s1,
                                int s2, int nv) {
  i64 z[2 * MAX_K2][BLK], t[MAX_K2 + 2][BLK];
  i64 h[MAX_K2 + 2][BLK], l[MAX_K2 + 2][BLK];
  school52_vv(z, v, stride, w, wstride, k2, nv);
  barrett52(z, t, qr, q2r, mur, k2, km2, s1, s2, nv);
  add_canon52(h, u, t, stride, qr, k2, nv);
  sub_canon52(l, u, t, stride, qr, k2, nv);
  store52(u, h, stride, k2, nv);
  store52(v, l, stride, k2, nv);
}

static NOINLINE void bfly52_gs_w(i64 *u, i64 *v, long stride, const i64 *wl,
                               const i64 *qr, const i64 *q2r, const i64 *mur,
                               int k2, int km2, int s1, int s2, int nv) {
  i64 vb[MAX_K2][BLK], sum[MAX_K2 + 2][BLK], dif[MAX_K2 + 2][BLK];
  i64 z[2 * MAX_K2][BLK], l[MAX_K2 + 2][BLK];
  load52(vb, v, stride, k2, nv);
  add_canon52(sum, u, vb, stride, qr, k2, nv);
  sub_canon52(dif, u, vb, stride, qr, k2, nv);
  school52_vs(z, &dif[0][0], BLK, wl, k2, nv);
  barrett52(z, l, qr, q2r, mur, k2, km2, s1, s2, nv);
  store52(u, sum, stride, k2, nv);
  store52(v, l, stride, k2, nv);
}

static NOINLINE void bfly52_gs_vv(i64 *u, i64 *v, const i64 *w, long stride,
                                long wstride, const i64 *qr, const i64 *q2r,
                                const i64 *mur, int k2, int km2, int s1,
                                int s2, int nv) {
  i64 vb[MAX_K2][BLK], sum[MAX_K2 + 2][BLK], dif[MAX_K2 + 2][BLK];
  i64 z[2 * MAX_K2][BLK], l[MAX_K2 + 2][BLK];
  load52(vb, v, stride, k2, nv);
  add_canon52(sum, u, vb, stride, qr, k2, nv);
  sub_canon52(dif, u, vb, stride, qr, k2, nv);
  school52_vv(z, &dif[0][0], BLK, w, wstride, k2, nv);
  barrett52(z, l, qr, q2r, mur, k2, km2, s1, s2, nv);
  store52(u, sum, stride, k2, nv);
  store52(v, l, stride, k2, nv);
}

static void stage52(i64 *dat, long stride, long len, long t, const i64 *twr,
                    long ts, long widx0, int gs, const i64 *qr,
                    const i64 *q2r, const i64 *mur, int k2, int km2, int s1,
                    int s2) {
  long groups = len / (2 * t);
  if (t >= BLK) {
    for (long g = 0; g < groups; g++) {
      long j1 = 2 * g * t;
      i64 wl[MAX_K2];
      for (int i = 0; i < k2; i++)
        wl[i] = twr[(long)i * ts + widx0 + g];
      for (long j = 0; j < t; j += BLK) {
        int nv = (t - j < BLK) ? (int)(t - j) : BLK;
        if (gs)
          bfly52_gs_w(dat + j1 + j, dat + j1 + t + j, stride, wl, qr, q2r,
                      mur, k2, km2, s1, s2, nv);
        else
          bfly52_ct_w(dat + j1 + j, dat + j1 + t + j, stride, wl, qr, q2r,
                      mur, k2, km2, s1, s2, nv);
      }
    }
    return;
  }
  i64 ub[MAX_K2][HSPAN], vb[MAX_K2][HSPAN], wb[MAX_K2][HSPAN];
  long nb = len / 2;
  long idx = 0;
  for (long g = 0; g < groups; g++) {
    long j1 = 2 * g * t;
    for (long j = 0; j < t; j++, idx++)
      for (int i = 0; i < k2; i++) {
        ub[i][idx] = dat[(long)i * stride + j1 + j];
        vb[i][idx] = dat[(long)i * stride + j1 + t + j];
        wb[i][idx] = twr[(long)i * ts + widx0 + g];
      }
  }
  for (long xb = 0; xb < nb; xb += BLK) {
    int nv = (nb - xb < BLK) ? (int)(nb - xb) : BLK;
    if (gs)
      bfly52_gs_vv(&ub[0][xb], &vb[0][xb], &wb[0][xb], HSPAN, HSPAN, qr, q2r,
                   mur, k2, km2, s1, s2, nv);
    else
      bfly52_ct_vv(&ub[0][xb], &vb[0][xb], &wb[0][xb], HSPAN, HSPAN, qr, q2r,
                   mur, k2, km2, s1, s2, nv);
  }
  idx = 0;
  for (long g = 0; g < groups; g++) {
    long j1 = 2 * g * t;
    for (long j = 0; j < t; j++, idx++)
      for (int i = 0; i < k2; i++) {
        dat[(long)i * stride + j1 + j] = ub[i][idx];
        dat[(long)i * stride + j1 + t + j] = vb[i][idx];
      }
  }
}

static NOINLINE void mul52_vs(i64 *dat, long stride, const i64 *wl,
                            const i64 *qr, const i64 *q2r, const i64 *mur,
                            int k2, int km2, int s1, int s2, int nv) {
  i64 z[2 * MAX_K2][BLK], red[MAX_K2 + 2][BLK];
  school52_vs(z, dat, stride, wl, k2, nv);
  barrett52(z, red, qr, q2r, mur, k2, km2, s1, s2, nv);
  store52(dat, red, stride, k2, nv);
}

static void ntt_row52(i64 *row, long ds, const i64 *twr, long ts,
                      const i64 *ninvr, const i64 *qr, const i64 *q2r,
                      const i64 *mur, int k2, int km2, int s1, int s2, long n,
                      int inverse) {
  long span = n < SPAN ? n : SPAN;
  i64 buf[MAX_K2][SPAN];
  if (!inverse) {
    long t = n >> 1;
    for (; t >= span; t >>= 1)
      stage52(row, ds, n, t, twr, ts, n / (2 * t), 0, qr, q2r, mur, k2, km2,
              s1, s2);
    for (long off = 0; off < n; off += span) {
      for (int i = 0; i < k2; i++)
        for (long v = 0; v < span; v++)
          buf[i][v] = row[(long)i * ds + off + v];
      for (long tt = t; tt >= 1; tt >>= 1)
        stage52(&buf[0][0], SPAN, span, tt, twr, ts,
                n / (2 * tt) + off / (2 * tt), 0, qr, q2r, mur, k2, km2, s1,
                s2);
      for (int i = 0; i < k2; i++)
        for (long v = 0; v < span; v++)
          row[(long)i * ds + off + v] = buf[i][v];
    }
    return;
  }
  for (long off = 0; off < n; off += span) {
    for (int i = 0; i < k2; i++)
      for (long v = 0; v < span; v++)
        buf[i][v] = row[(long)i * ds + off + v];
    for (long tt = 1; tt <= span / 2; tt <<= 1)
      stage52(&buf[0][0], SPAN, span, tt, twr, ts,
              n / (2 * tt) + off / (2 * tt), 1, qr, q2r, mur, k2, km2, s1,
              s2);
    for (int i = 0; i < k2; i++)
      for (long v = 0; v < span; v++)
        row[(long)i * ds + off + v] = buf[i][v];
  }
  for (long t = span; t <= n / 2; t <<= 1)
    stage52(row, ds, n, t, twr, ts, n / (2 * t), 1, qr, q2r, mur, k2, km2,
            s1, s2);
  for (long x = 0; x < n; x += BLK) {
    int nv = (n - x < BLK) ? (int)(n - x) : BLK;
    mul52_vs(row + x, ds, ninvr, qr, q2r, mur, k2, km2, s1, s2, nv);
  }
}

/* In-place 26 -> 52 pack over a (k, count) plane block: 52-limb i is
 * 26-limbs 2i and 2i+1.  Ascending i never clobbers an unread source
 * plane (2i >= i+1 for i >= 1; the i = 0 read happens lane-by-lane
 * before its write). */
static void pack52_planes(i64 *data, long plane, int k) {
  int k2 = (k + 1) / 2;
  for (int i = 0; i < k2; i++) {
    i64 *dst = data + (long)i * plane;
    const i64 *lo = data + (long)(2 * i) * plane;
    if (2 * i + 1 < k) {
      const i64 *hi = data + (long)(2 * i + 1) * plane;
      for (long x = 0; x < plane; x++)
        dst[x] = lo[x] | (hi[x] << LIMB_BITS);
    } else if (dst != lo) {
      for (long x = 0; x < plane; x++)
        dst[x] = lo[x];
    }
  }
}

/* In-place 52 -> 26 unpack, descending i so sources survive until
 * read.  Canonical residues keep the odd-k top 52-limb below 2^26
 * (q < 2^(26k) and 26k - 52*(k2-1) = 26), so no plane k is written. */
static void unpack52_planes(i64 *data, long plane, int k) {
  int k2 = (k + 1) / 2;
  for (int i = k2 - 1; i >= 0; i--) {
    const i64 *src = data + (long)i * plane;
    i64 *lo = data + (long)(2 * i) * plane;
    if (2 * i + 1 < k) {
      i64 *hi = data + (long)(2 * i + 1) * plane;
      for (long x = 0; x < plane; x++) {
        i64 val = src[x];
        lo[x] = val & LIMB_MASK;
        hi[x] = val >> LIMB_BITS;
      }
    } else if (lo != src) {
      for (long x = 0; x < plane; x++)
        lo[x] = src[x];
    }
  }
}

int rpu_limb_pack52(i64 *data, i64 k, i64 count) {
  if (k < 1 || k > MAX_K || count < 1)
    return -1;
  pack52_planes(data, (long)count, (int)k);
  return 0;
}

int rpu_limb_unpack52(i64 *data, i64 k, i64 count) {
  if (k < 1 || k > MAX_K || count < 1)
    return -1;
  unpack52_planes(data, (long)count, (int)k);
  return 0;
}

/* The 52-bit whole-transform kernel.  data arrives as (k, rows, n)
 * 26-bit planes and is packed in place on entry / unpacked on exit,
 * so the external representation is identical to rpu_limb_ntt's.
 * tw52 is (k2, crows, n) pre-packed host-side; ninv52 is (crows, k2);
 * the q/2q/mu constants are the base-2^52 row sets.  n >= 16 keeps
 * every block a full 8-lane multiple for the IFMA path. */
int rpu_limb_ntt52(i64 *data, const i64 *tw52, const i64 *ninv52,
                   const i64 *q52ext, const i64 *q252ext, const i64 *mu52,
                   i64 k, i64 km2, i64 s1, i64 s2, i64 rows, i64 n,
                   i64 crows, i64 inverse) {
  if (k < 1 || k > MAX_K || km2 < 1 || km2 > MAX_K2 + 1 || s1 < 0 || s2 < 1)
    return -1;
  if (n < 16 || (n & (n - 1)) || rows < 1 || (crows != 1 && crows != rows))
    return -1;
  int k2 = (int)((k + 1) / 2);
  if (2 * k2 - s1 + km2 > 3 * MAX_K2 + 2)
    return -1;
  long plane = (long)rows * n;
  pack52_planes(data, plane, (int)k);
  long ts = (long)crows * n;
  for (long r = 0; r < rows; r++) {
    long cr = (crows == 1) ? 0 : r;
    ntt_row52(data + r * n, plane, tw52 + cr * n, ts, ninv52 + cr * k2,
              q52ext + cr * (k2 + 1), q252ext + cr * (k2 + 1),
              mu52 + cr * km2, k2, (int)km2, (int)s1, (int)s2, n,
              (int)inverse);
  }
  unpack52_planes(data, plane, (int)k);
  return 0;
}
