"""Barrett reduction: a shift-and-multiply modular multiplier model.

Hardware modular multipliers avoid a true wide division; Barrett reduction
replaces ``x mod q`` with two multiplications by a precomputed reciprocal and
at most two correction subtractions.  The RPU's LAW multiplier is a pipelined
unit of exactly this family; :class:`BarrettReducer` reproduces its
bit-accurate behaviour and also exposes the operation counts that the
hardware energy model (:mod:`repro.hw.energy`) charges per multiply.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BarrettReducer:
    """Bit-accurate Barrett modular reducer/multiplier for a fixed modulus.

    Args:
        modulus: the prime (or odd composite) modulus q, 2 < q < 2**word_bits.
        word_bits: datapath word size; the RPU instantiates 128.

    The precomputed factor is ``mu = floor(4**k / q)`` with ``k`` the bit
    length of q, following the classic HAC 14.42 formulation.
    """

    modulus: int
    word_bits: int = 128
    k: int = field(init=False)
    mu: int = field(init=False)

    def __post_init__(self) -> None:
        if self.modulus <= 2:
            raise ValueError("modulus must be > 2")
        if self.modulus >= 1 << self.word_bits:
            raise ValueError(
                f"modulus needs {self.modulus.bit_length()} bits, datapath "
                f"is {self.word_bits}"
            )
        self.k = self.modulus.bit_length()
        self.mu = (1 << (2 * self.k)) // self.modulus

    def reduce(self, x: int) -> int:
        """Reduce ``0 <= x < q**2`` to ``x mod q`` without division.

        Mirrors the hardware sequence: a high multiply by mu, a low multiply
        by q, and up to two conditional subtractions.
        """
        if not 0 <= x < self.modulus * self.modulus:
            raise ValueError("Barrett input must lie in [0, q^2)")
        q_hat = ((x >> (self.k - 1)) * self.mu) >> (self.k + 1)
        r = x - q_hat * self.modulus
        # At most two correction steps; assert the classic bound holds.
        corrections = 0
        while r >= self.modulus:
            r -= self.modulus
            corrections += 1
        assert corrections <= 2, "Barrett bound violated"
        return r

    def mul(self, a: int, b: int) -> int:
        """Modular multiply with Barrett reduction."""
        if not (0 <= a < self.modulus and 0 <= b < self.modulus):
            raise ValueError("operands must be canonical residues")
        return self.reduce(a * b)

    def operation_counts(self) -> dict[str, int]:
        """Primitive-op cost of one modular multiply (for energy modelling).

        Returns a dict of wide-multiplier and adder invocations: one full
        ``a*b`` product, two reduction multiplies, and two subtractions.
        """
        return {"wide_mul": 3, "wide_addsub": 2}
