"""Array-wide modular arithmetic: the LAW operations over numpy arrays.

The scalar helpers in :mod:`repro.modmath.arith` act on one residue at a
time; this module provides the same semantics over whole numpy arrays so
throughput-oriented code (the vectorized FEMU backend, the batched NTTs,
RNS tower sweeps) can amortize Python interpreter overhead across an
entire vector, batch, or tower stack.

Two element representations are supported and chosen automatically:

* ``int64`` -- exact when the modulus is below :data:`INT64_MODULUS_LIMIT`
  (products of two canonical residues then fit in a signed 64-bit lane).
  This is the fast path, entirely in C.
* ``object`` -- numpy arrays of Python ints, used for the paper's 128-bit
  moduli.  Still exact (arbitrary precision) and still one ufunc call per
  instruction instead of a Python-level loop per lane.

Both paths produce bit-identical results to the scalar helpers; the
property suite fuzzes that equivalence.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.modmath.barrett import BarrettReducer
from repro.modmath.montgomery import MontgomeryDomain

INT64_MODULUS_LIMIT = 1 << 31
"""Largest modulus for which products of canonical residues fit int64."""

INT64_VALUE_LIMIT = 1 << 62
"""Largest raw magnitude an int64 lane may hold with headroom for adds."""


def dtype_for_modulus(q: int) -> np.dtype:
    """The element dtype that keeps arithmetic mod ``q`` exact."""
    return np.dtype(np.int64) if q < INT64_MODULUS_LIMIT else np.dtype(object)


def fits_int64(*values: int) -> bool:
    """Whether every value is storable in an int64 lane with add headroom."""
    return all(-INT64_VALUE_LIMIT < v < INT64_VALUE_LIMIT for v in values)


def as_array(values, dtype) -> np.ndarray:
    """Materialize ``values`` as an array of the given element dtype."""
    if isinstance(values, np.ndarray) and values.dtype == dtype:
        return values
    return np.array(values, dtype=dtype)


def residue_array(values: Sequence[int], q: int) -> np.ndarray:
    """Canonical residues as an array in the cheapest exact representation."""
    a = as_array(values, dtype_for_modulus(q))
    if ((a < 0) | (a >= q)).any():
        raise ValueError("coefficients must be canonical residues in [0, q)")
    return a


def residue_matrix(
    rows: Sequence[Sequence[int]], moduli: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Stack L residue rows (one modulus each) into ``(L, n)`` + ``(L, 1)``.

    The returned modulus column broadcasts against the row matrix, so
    ``(a + b) % q`` computes every tower of an RNS operation in one ufunc
    sweep even when each row lives under a different prime.
    """
    if len(rows) != len(moduli):
        raise ValueError("row count must equal modulus count")
    dtype = (
        np.dtype(np.int64)
        if all(q < INT64_MODULUS_LIMIT for q in moduli)
        else np.dtype(object)
    )
    matrix = as_array([list(r) for r in rows], dtype)
    q_col = as_array(list(moduli), dtype).reshape(len(moduli), 1)
    return matrix, q_col


# -- elementwise LAW ops (operands must be canonical for int64 exactness) ---


def vec_mod_add(a, b, q):
    """Lanewise ``(a + b) mod q``; operands canonical residues."""
    return (a + b) % q


def vec_mod_sub(a, b, q):
    """Lanewise ``(a - b) mod q``; operands canonical residues."""
    return (a - b) % q


def vec_mod_mul(a, b, q):
    """Lanewise ``a * b mod q``; operands canonical residues."""
    return a * b % q


# -- reduction-unit models over arrays --------------------------------------

_BARRETT_INT64_LIMIT = 1 << 30  # q < 2^30 keeps (x >> (k-1)) * mu in int64


def vec_barrett_reduce(x, reducer: BarrettReducer) -> np.ndarray:
    """Array form of :meth:`BarrettReducer.reduce` (inputs in ``[0, q^2)``).

    Mirrors the hardware shift/multiply sequence lane-by-lane; falls back
    to object (arbitrary-precision) lanes whenever the int64 intermediates
    of the reduction could overflow.
    """
    q, k, mu = reducer.modulus, reducer.k, reducer.mu
    dtype = np.dtype(np.int64) if q < _BARRETT_INT64_LIMIT else np.dtype(object)
    x = as_array(x, dtype)
    if ((x < 0) | (x >= q * q)).any():
        raise ValueError("Barrett input must lie in [0, q^2)")
    q_hat = (x >> (k - 1)) * mu >> (k + 1)
    r = x - q_hat * q
    # The classic bound allows at most two corrections; apply both
    # unconditionally as masked subtracts, the way the pipelined unit does.
    r = np.where(r >= q, r - q, r)
    r = np.where(r >= q, r - q, r)
    assert not (r >= q).any(), "Barrett bound violated"
    return as_array(r, dtype)


def vec_montgomery_redc(t, domain: MontgomeryDomain) -> np.ndarray:
    """Array form of :meth:`MontgomeryDomain.redc` (inputs in ``[0, q*R)``).

    int64 lanes require both q < 2^31 *and* r_bits <= 31: the reduction
    multiplies two R-bounded intermediates, so R itself (not just q) must
    leave headroom in 63 bits.
    """
    q = domain.modulus
    dtype = (
        np.dtype(np.int64)
        if q < INT64_MODULUS_LIMIT and domain.r_bits <= 31
        else np.dtype(object)
    )
    t = as_array(t, dtype)
    if ((t < 0) | (t >= q << domain.r_bits)).any():
        raise ValueError("REDC input out of range [0, q*R)")
    m = (t & domain.r_mask) * domain.q_inv_neg & domain.r_mask
    u = (t + m * q) >> domain.r_bits
    u = np.where(u >= q, u - q, u)
    return as_array(u, dtype)


def vec_montgomery_mul(a_mont, b_mont, domain: MontgomeryDomain) -> np.ndarray:
    """Lanewise in-domain Montgomery multiply (both operands in ``[0, q)``).

    Operands are validated in-domain, which also guarantees the int64 path
    cannot overflow: a*b < q^2 < 2^62 for q < 2^31.
    """
    q = domain.modulus
    dtype = (
        np.dtype(np.int64)
        if q < INT64_MODULUS_LIMIT and domain.r_bits <= 31
        else np.dtype(object)
    )
    a = as_array(a_mont, dtype)
    b = as_array(b_mont, dtype)
    if ((a < 0) | (a >= q)).any() or ((b < 0) | (b >= q)).any():
        raise ValueError("Montgomery operands must lie in [0, q)")
    return vec_montgomery_redc(a * b, domain)
