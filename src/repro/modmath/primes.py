"""NTT-friendly prime fields: primality, generation, and roots of unity.

RLWE rings Z_q[x]/(x^n + 1) need a prime q with q ≡ 1 (mod 2n) so that a
primitive 2n-th root of unity ψ exists (the negacyclic twiddle base).  The
RPU operates on up-to-128-bit q (paper section III-A); this module generates
such primes at any width, finds generators and roots of unity, and factors
group orders with trial division plus Brent's variant of Pollard's rho.
"""

from __future__ import annotations

import functools
import random

from repro.modmath.arith import mod_inv, mod_pow
from repro.util.bits import ilog2, is_power_of_two

# Deterministic Miller-Rabin bases valid for all n < 3.317e24 (> 2^81);
# beyond that we add fixed pseudo-random bases, which keeps the test
# deterministic run-to-run while making failure probability negligible.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)
_MR_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_EXTRA_BASE_COUNT = 16


def is_prime(n: int) -> bool:
    """Miller-Rabin primality test, deterministic below 2^81."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1

    def witnesses() -> list[int]:
        bases = list(_MR_BASES)
        if n >= 1 << 81:
            rng = random.Random(n)  # seeded by n: deterministic per input
            bases += [rng.randrange(2, n - 2) for _ in range(_EXTRA_BASE_COUNT)]
        return bases

    for a in witnesses():
        a %= n
        if a in (0, 1, n - 1):
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@functools.lru_cache(maxsize=None)
def find_ntt_prime(bits: int, n: int) -> int:
    """Find the largest prime q with exactly ``bits`` bits and q ≡ 1 mod 2n.

    The search walks candidates ``q = k * 2n + 1`` downward from 2^bits so
    that the field is as wide as the datapath allows (the paper's evaluation
    uses "128-bit" moduli).  Results are cached: parameter setup dominates
    small-test runtime otherwise.
    """
    if not is_power_of_two(n):
        raise ValueError("ring degree n must be a power of two")
    step = 2 * n
    if bits <= ilog2(step) + 1:
        raise ValueError(f"{bits}-bit prime cannot satisfy q ≡ 1 mod {step}")
    hi = (1 << bits) - 1
    k = (hi - 1) // step
    while k > 0:
        q = k * step + 1
        if q < 1 << (bits - 1):
            break
        if is_prime(q):
            return q
        k -= 1
    raise ValueError(f"no {bits}-bit prime ≡ 1 mod {step} found")


def _pollard_brent(n: int, rng: random.Random) -> int:
    """Brent's cycle-finding Pollard rho; returns a non-trivial factor."""
    if n % 2 == 0:
        return 2
    while True:
        y = rng.randrange(1, n)
        c = rng.randrange(1, n)
        m = 128
        g, r, q = 1, 1, 1
        x = ys = y
        while g == 1:
            x = y
            for _ in range(r):
                y = (y * y + c) % n
            k = 0
            while k < r and g == 1:
                ys = y
                for _ in range(min(m, r - k)):
                    y = (y * y + c) % n
                    q = q * abs(x - y) % n
                import math

                g = math.gcd(q, n)
                k += m
            r *= 2
        if g == n:
            import math

            g = 1
            while g == 1:
                ys = (ys * ys + c) % n
                g = math.gcd(abs(x - ys), n)
        if g != n:
            return g


def factorize(n: int) -> dict[int, int]:
    """Full prime factorization as ``{prime: exponent}``.

    Trial division over small primes first (NTT-prime group orders are
    2-smooth by construction, so this almost always finishes the job), then
    Pollard-Brent recursion for any residual composite.
    """
    if n <= 0:
        raise ValueError("factorize expects a positive integer")
    factors: dict[int, int] = {}

    def record(p: int) -> None:
        factors[p] = factors.get(p, 0) + 1

    for p in _SMALL_PRIMES:
        while n % p == 0:
            record(p)
            n //= p
    # Continue trial division a little beyond the hard-coded table.
    d = _SMALL_PRIMES[-1] + 2
    while d * d <= n and d < 100_000:
        while n % d == 0:
            record(d)
            n //= d
        d += 2
    if n == 1:
        return factors
    stack = [n]
    rng = random.Random(0xB512)
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            record(m)
            continue
        f = _pollard_brent(m, rng)
        stack.append(f)
        stack.append(m // f)
    return factors


@functools.lru_cache(maxsize=None)
def find_primitive_root(q: int) -> int:
    """Smallest generator of the multiplicative group of Z_q (q prime)."""
    if not is_prime(q):
        raise ValueError("primitive roots are only computed for prime moduli")
    order = q - 1
    prime_factors = list(factorize(order))
    for g in range(2, q):
        if all(mod_pow(g, order // p, q) != 1 for p in prime_factors):
            return g
    raise ArithmeticError(f"no primitive root found for {q}")  # pragma: no cover


def find_root_of_unity(order: int, q: int) -> int:
    """A primitive ``order``-th root of unity in Z_q.

    Requires ``order | q - 1``.  The returned root w satisfies w^order = 1
    and w^(order/p) != 1 for every prime p dividing order.
    """
    if (q - 1) % order != 0:
        raise ValueError(f"{order} does not divide q-1 for q={q}")
    g = find_primitive_root(q)
    w = mod_pow(g, (q - 1) // order, q)
    assert mod_pow(w, order, q) == 1
    return w


def minimal_2nth_root(n: int, q: int) -> int:
    """The smallest primitive 2n-th root of unity ψ in Z_q.

    Matching OpenFHE's convention of using the *minimal* root makes our
    reference twiddle tables reproducible, which the functional-validation
    tests rely on.  ψ satisfies ψ^n = -1 (the negacyclic property).
    """
    if not is_power_of_two(n):
        raise ValueError("n must be a power of two")
    order = 2 * n
    w = find_root_of_unity(order, q)
    # All primitive 2n-th roots are w^j with j odd; scan for the minimum.
    w2 = w * w % q
    best = w
    current = w
    for _ in range(n - 1):
        current = current * w2 % q
        if current < best:
            best = current
    assert mod_pow(best, n, q) == q - 1, "psi^n must equal -1"
    return best


def inverse_root(root: int, q: int) -> int:
    """Inverse of a root of unity (convenience wrapper)."""
    return mod_inv(root, q)
