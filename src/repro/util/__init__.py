"""Small shared utilities: powers of two, bit reversal, argument checking."""

from repro.util.bits import (
    bit_reverse,
    bit_reverse_permutation,
    ceil_div,
    ilog2,
    is_power_of_two,
)

__all__ = [
    "bit_reverse",
    "bit_reverse_permutation",
    "ceil_div",
    "ilog2",
    "is_power_of_two",
]
