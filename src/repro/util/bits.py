"""Bit-manipulation helpers used across the ISA, NTT, and simulator layers.

These are deliberately tiny, dependency-free functions: the NTT code paths
call them in hot-ish loops and the ISA encoder relies on their exactness.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Return log2 of a positive power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)


def bit_reverse(index: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``index``.

    ``bit_reverse(0b0011, 4) == 0b1100``.  Used for NTT input/output
    orderings (the RPU's SPIRAL kernels produce bit-reversed outputs that the
    inverse kernels consume).
    """
    if index < 0 or index >= (1 << bits):
        raise ValueError(f"index {index} does not fit in {bits} bits")
    result = 0
    for _ in range(bits):
        result = (result << 1) | (index & 1)
        index >>= 1
    return result


def bit_reverse_permutation(n: int) -> list[int]:
    """Return the length-``n`` bit-reversal permutation (n a power of two)."""
    bits = ilog2(n)
    return [bit_reverse(i, bits) for i in range(n)]
