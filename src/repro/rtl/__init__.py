"""Beat-accurate reference machine (the RTL/Palladium stand-in).

The paper validates its C++ simulator against a full RTL implementation
emulated on a Palladium system, reporting 97% performance accuracy.  We
cannot tape out, so this package provides a second, structurally different
timing implementation: an explicit cycle-by-cycle state machine with real
queues, unit occupancy counters and writeback events.
:mod:`repro.eval.validation` runs both models over a kernel suite and
reports their agreement.
"""

from repro.rtl.machine import BeatAccurateMachine

__all__ = ["BeatAccurateMachine"]
