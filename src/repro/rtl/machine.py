"""Cycle-stepped RPU timing machine.

Unlike :class:`repro.perf.engine.CycleSimulator` -- which computes each
instruction's dispatch/issue/completion analytically in one pass -- this
machine advances global state one clock edge at a time, with explicit:

* a fetch/decode stage holding the next undecoded instruction,
* a busyboard bit array consulted combinationally at dispatch,
* three bounded queues feeding three units,
* per-unit occupancy down-counters,
* a writeback event list that clears busyboard bits.

Two independently written models agreeing on the same ISA-level timing
semantics is our stand-in for the paper's simulator-vs-RTL validation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.isa.opcodes import InstructionClass, Opcode
from repro.isa.program import Program
from repro.perf.config import RpuConfig
from repro.perf.engine import CycleSimulator

_PIPES = (InstructionClass.LSI, InstructionClass.CI, InstructionClass.SI)


@dataclass
class _Unit:
    busy_remaining: int = 0


class BeatAccurateMachine:
    """Steps the microarchitecture one cycle at a time."""

    def __init__(self, config: RpuConfig) -> None:
        self.config = config
        # Reuse only the *static* per-instruction occupancy/latency helpers;
        # all sequencing below is independent of the analytic engine.
        self._timing = CycleSimulator(config)

    def run(self, program: Program, max_cycles: int = 50_000_000) -> int:
        """Return the cycle count to drain the whole kernel."""
        cfg = self.config
        body = [
            i for i in program.instructions if i.opcode is not Opcode.HALT
        ]
        occupancy = [self._timing._occupancy(i) for i in body]
        latency = [self._timing._latency(i) for i in body]

        queues = {p: deque() for p in _PIPES}
        units = {p: _Unit() for p in _PIPES}
        inflight: list[list[int]] = []  # writeback events: [cycle, regs...]
        busy = [False] * 64
        sreg_busy = [False] * 64
        fetch_index = 0
        completed = 0
        cycle = 0

        while completed < len(body):
            cycle += 1
            if cycle > max_cycles:
                raise RuntimeError("beat-accurate machine did not converge")

            # 1. Writeback: clear busyboard entries due this cycle.
            still = []
            for event in inflight:
                if event[0] <= cycle:
                    for reg in event[1]:
                        busy[reg] = False
                    for sreg in event[2]:
                        sreg_busy[sreg] = False
                    completed += 1
                else:
                    still.append(event)
            inflight = still

            # 2. Units: tick occupancy; pop queue heads into free units.
            for pipe in _PIPES:
                unit = units[pipe]
                if unit.busy_remaining > 0:
                    unit.busy_remaining -= 1
                if unit.busy_remaining == 0 and queues[pipe]:
                    idx = queues[pipe].popleft()
                    unit.busy_remaining = occupancy[idx]
                    regs = list(body[idx].vector_dests())
                    if cfg.busyboard_track_sources:
                        regs.extend(body[idx].vector_sources())
                    inflight.append(
                        [
                            cycle + occupancy[idx] + latency[idx],
                            regs,
                            [body[idx].rt]
                            if body[idx].opcode is Opcode.SLOAD
                            else [],
                        ]
                    )

            # 3. Dispatch: in-order, one per cycle, busyboard permitting.
            if fetch_index < len(body):
                inst = body[fetch_index]
                pipe = inst.instruction_class
                blocked = any(busy[r] for r in inst.vector_dests())
                blocked = blocked or any(busy[r] for r in inst.vector_sources())
                if cfg.busyboard_track_sources:
                    # Strict policy: sources also occupy busyboard slots, so
                    # nothing extra to check here -- modelled by marking them.
                    pass
                if inst.opcode.is_vector_scalar and sreg_busy[inst.rt]:
                    blocked = True
                if not blocked and len(queues[pipe]) < cfg.queue_depth:
                    queues[pipe].append(fetch_index)
                    for r in inst.vector_dests():
                        busy[r] = True
                    if cfg.busyboard_track_sources:
                        for r in inst.vector_sources():
                            busy[r] = True
                    if inst.opcode is Opcode.SLOAD:
                        sreg_busy[inst.rt] = True
                    fetch_index += 1
        return cycle
