"""Number Theoretic Transform substrate.

Provides the reference transforms that play the role OpenFHE plays in the
paper: ground truth for validating SPIRAL-generated B512 programs and the
functional simulator.

* :mod:`repro.ntt.reference` -- iterative Cooley-Tukey forward /
  Gentleman-Sande inverse negacyclic NTT (the Longa-Naehrig formulation with
  bit-reversed twiddle tables).
* :mod:`repro.ntt.naive` -- O(n^2) transforms used to validate the reference.
* :mod:`repro.ntt.pease` -- the constant-geometry (Pease / Korn-Lambiotte)
  dataflow that the RPU kernels vectorize, at array level.
* :mod:`repro.ntt.twiddles` -- ψ tables (bit-reversed order) per (n, q).
* :mod:`repro.ntt.polymul` -- negacyclic polynomial multiplication via NTT.
* :mod:`repro.ntt.vectorized` -- batched numpy transforms: a (B, n) matrix
  of rows, each under its own modulus, in one pass (bit-identical to the
  scalar reference row-for-row).
"""

from repro.ntt.naive import naive_negacyclic_convolution, naive_negacyclic_ntt
from repro.ntt.pease import pease_ntt_forward, pease_ntt_inverse
from repro.ntt.polymul import negacyclic_polymul
from repro.ntt.reference import ntt_forward, ntt_inverse
from repro.ntt.twiddles import TwiddleTable
from repro.ntt.vectorized import (
    batch_negacyclic_polymul,
    batch_ntt_forward,
    batch_ntt_inverse,
)

__all__ = [
    "TwiddleTable",
    "ntt_forward",
    "ntt_inverse",
    "naive_negacyclic_ntt",
    "naive_negacyclic_convolution",
    "pease_ntt_forward",
    "pease_ntt_inverse",
    "negacyclic_polymul",
    "batch_ntt_forward",
    "batch_ntt_inverse",
    "batch_negacyclic_polymul",
]
