"""Twiddle factor tables for negacyclic NTTs.

The tables follow the Longa-Naehrig convention used throughout the lattice
crypto world (and by OpenFHE): ``psi_rev[i] = psi ** bit_reverse(i)`` so the
iterative transforms walk them sequentially.  The RPU's SPIRAL backend lays
exactly these tables out in VDM; twiddle vector loads in generated kernels
are contiguous slices of ``psi_rev`` (see repro.spiral.ntt_codegen).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.modmath.arith import mod_inv
from repro.modmath.primes import find_ntt_prime, minimal_2nth_root
from repro.util.bits import bit_reverse, ilog2


@dataclass(frozen=True)
class TwiddleTable:
    """All constants a forward+inverse negacyclic NTT needs for (n, q).

    Attributes:
        n: ring degree (power of two).
        q: prime modulus with q ≡ 1 (mod 2n).
        psi: the minimal primitive 2n-th root of unity (psi^n = -1).
        psi_rev: tuple of n entries, ``psi_rev[i] = psi^bitrev(i, log2 n)``.
        psi_inv_rev: entrywise inverses of ``psi_rev``.
        n_inv: n^{-1} mod q, the inverse-transform scaling factor.
    """

    n: int
    q: int
    psi: int
    psi_rev: tuple[int, ...]
    psi_inv_rev: tuple[int, ...]
    n_inv: int

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def for_ring(n: int, q: int | None = None, q_bits: int = 128) -> "TwiddleTable":
        """Build (and cache) the table for ring degree ``n``.

        Args:
            n: power-of-two ring degree.
            q: modulus; when None, the canonical ``q_bits``-bit NTT prime for
               this degree is generated (the paper's 128-bit default).
            q_bits: width used when generating q.
        """
        if q is None:
            q = find_ntt_prime(q_bits, n)
        bits = ilog2(n)
        psi = minimal_2nth_root(n, q)
        psi_inv = mod_inv(psi, q)
        powers = [1] * n
        inv_powers = [1] * n
        for i in range(1, n):
            powers[i] = powers[i - 1] * psi % q
            inv_powers[i] = inv_powers[i - 1] * psi_inv % q
        psi_rev = tuple(powers[bit_reverse(i, bits)] for i in range(n))
        psi_inv_rev = tuple(inv_powers[bit_reverse(i, bits)] for i in range(n))
        return TwiddleTable(
            n=n,
            q=q,
            psi=psi,
            psi_rev=psi_rev,
            psi_inv_rev=psi_inv_rev,
            n_inv=mod_inv(n, q),
        )

    def validate(self) -> None:
        """Cheap self-checks used by the property tests."""
        assert pow(self.psi, 2 * self.n, self.q) == 1
        assert pow(self.psi, self.n, self.q) == self.q - 1
        assert self.psi_rev[0] == 1
        assert self.n * self.n_inv % self.q == 1
