"""Batched negacyclic NTTs over numpy rows.

One call transforms a ``(B, n)`` matrix of residue rows -- B independent
polynomials, or the B towers of an RNS ciphertext, each row under its own
modulus.  The butterflies are the exact Longa-Naehrig recurrences of
:mod:`repro.ntt.reference`, applied to array slices instead of scalars, so
the outputs are bit-identical row-for-row with the scalar oracle (the
property suite fuzzes this).

Element representation -- always C integer lanes, never object dtype:

* rows under sub-31-bit moduli run on the int64 fast path (one array
  expression per butterfly column, as in PR 1);
* wider moduli (the paper's 128-bit towers) run on the multi-limb int64
  engine (:mod:`repro.modmath.limb`), with the transform re-expressed in
  stage-parallel form: one gathered butterfly sweep per NTT stage instead
  of one slice per (stage, block), so a 4096-point stage is ~10 limb-engine
  calls rather than thousands of tiny slices.  Rows are grouped by modulus
  bit length (one vector engine per group -- RNS bases land in a single
  group) and both loop orders execute the identical butterflies, so
  results stay bit-exact with the scalar oracle.
"""

from __future__ import annotations

import functools
from collections.abc import Sequence

import numpy as np

from repro.modmath import native
from repro.modmath.limb import compose, decompose, grouped_engines, pack52
from repro.modmath.vectorized import (
    INT64_MODULUS_LIMIT,
    as_array,
    vec_mod_mul,
)
from repro.ntt.twiddles import TwiddleTable


def _normalize_tables(
    row_count: int, tables: TwiddleTable | Sequence[TwiddleTable]
) -> list[TwiddleTable]:
    if isinstance(tables, TwiddleTable):
        tables = [tables] * row_count
    tables = list(tables)
    if len(tables) != row_count:
        raise ValueError("need one twiddle table per row (or one shared)")
    if any(t.n != tables[0].n for t in tables):
        raise ValueError("every table must share one ring degree")
    return tables


def _stack(
    rows, tables: TwiddleTable | Sequence[TwiddleTable], twiddle_attr: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[TwiddleTable]]:
    """Rows, per-row modulus column and per-row twiddle matrix, one dtype.

    The dtype rule matches :func:`repro.modmath.vectorized.residue_matrix`:
    int64 iff every row's modulus is int64-eligible, object otherwise.  One
    conversion builds the (always private, mutable) row matrix directly.
    """
    row_count = rows.shape[0] if isinstance(rows, np.ndarray) else len(rows)
    tabs = _normalize_tables(row_count, tables)
    dtype = (
        np.dtype(np.int64)
        if all(t.q < INT64_MODULUS_LIMIT for t in tabs)
        else np.dtype(object)
    )
    a = np.array(rows, dtype=dtype)  # copies, so the sweeps can mutate
    if a.ndim != 2 or a.shape[1] != tabs[0].n:
        raise ValueError("expected a (batch, n) matrix matching the tables")
    q_col = as_array([t.q for t in tabs], dtype).reshape(len(tabs), 1)
    tw = as_array([list(getattr(t, twiddle_attr)) for t in tabs], dtype)
    for t, row in zip(tabs, a):
        if ((row < 0) | (row >= t.q)).any():
            raise ValueError("coefficients must be canonical residues")
    return a, q_col, tw, tabs


# -- multi-limb path (wide moduli) ------------------------------------------


@functools.lru_cache(maxsize=None)
def _stage_plan(n: int, direction: str) -> tuple:
    """Per-stage ``(u_idx, v_idx, tw_idx)`` gathers of the iterative NTT.

    Each stage of :mod:`repro.ntt.reference` is re-expressed as one gather
    over all its butterflies (the butterflies within a stage are
    independent, so reordering them is bit-exact); the limb engine then
    processes a whole stage in a handful of array sweeps.
    """
    stages = []
    if direction == "forward":
        t, m = n, 1
        while m < n:
            t //= 2
            u = np.concatenate([2 * i * t + np.arange(t) for i in range(m)])
            tw = np.repeat(m + np.arange(m), t)
            stages.append((u, u + t, tw))
            m *= 2
    else:
        t, m = 1, n
        while m > 1:
            h = m // 2
            u = np.concatenate([2 * t * i + np.arange(t) for i in range(h)])
            tw = np.repeat(h + np.arange(h), t)
            stages.append((u, u + t, tw))
            t *= 2
            m = h
    return tuple(stages)


@functools.lru_cache(maxsize=None)
def _limb_twiddles(tabs: tuple, attr: str, k: int) -> np.ndarray:
    """Limb planes of per-row twiddle tables: ``(k, L, n)`` (cached)."""
    return decompose([list(getattr(t, attr)) for t in tabs], k)


@functools.lru_cache(maxsize=None)
def _limb_n_inv(tabs: tuple, k: int) -> np.ndarray:
    """Limb planes of the per-row inverse-transform scale: ``(k, L, 1)``."""
    return decompose([[t.n_inv] for t in tabs], k)


@functools.lru_cache(maxsize=None)
def _limb_twiddles52(tabs: tuple, attr: str, k: int) -> np.ndarray:
    """Base-2^52 packed twiddle planes for the IFMA kernel (cached)."""
    return pack52(np.ascontiguousarray(_limb_twiddles(tabs, attr, k)))


@functools.lru_cache(maxsize=None)
def _limb_n_inv52(tabs: tuple, k: int) -> np.ndarray:
    """Base-2^52 packed inverse-scale planes (cached)."""
    return pack52(np.ascontiguousarray(_limb_n_inv(tabs, k)))


def _whole_transform(a, sub_tabs: tuple, attr: str, engine, inverse: bool) -> bool:
    """One compiled call for all stages of this group's transforms.

    Mutates ``a`` (the group's ``(k, L, n)`` planes) in place and
    returns ``True``; ``False`` leaves ``a`` untouched so the caller
    runs the per-stage path.  O(1) Python dispatches per transform
    instead of the stage loop's O(log n).
    """
    if not engine.ntt_native:
        return False
    kernels = native.active()
    k = engine.k
    tw = _limb_twiddles(sub_tabs, attr, k)
    use52 = kernels.has_ifma and a.shape[2] >= 16
    tw52 = _limb_twiddles52(sub_tabs, attr, k) if use52 else None
    if inverse:
        return engine.ntt(
            a,
            tw,
            _limb_n_inv(sub_tabs, k),
            inverse=True,
            tw52=tw52,
            n_inv52=_limb_n_inv52(sub_tabs, k) if use52 else None,
        )
    return engine.ntt(a, tw, tw52=tw52)


def _checked_planes(rows, idx, engine, n: int) -> np.ndarray:
    """Decompose selected rows into limb planes, enforcing canonicality."""
    sub = rows[idx] if isinstance(rows, np.ndarray) else [rows[i] for i in idx]
    try:
        planes = engine.encode(sub)
    except ValueError as exc:
        raise ValueError("coefficients must be canonical residues") from exc
    if planes.ndim != 3 or planes.shape[2] != n:
        raise ValueError("expected a (batch, n) matrix matching the tables")
    if engine.noncanonical_mask(planes).any():
        raise ValueError("coefficients must be canonical residues")
    return planes


def _limb_forward_planes(a: np.ndarray, tw: np.ndarray, engine, n: int) -> np.ndarray:
    for u_idx, v_idx, tw_idx in _stage_plan(n, "forward"):
        u = np.ascontiguousarray(a[:, :, u_idx])
        b = np.ascontiguousarray(a[:, :, v_idx])
        w = np.ascontiguousarray(tw[:, :, tw_idx])
        hi, lo = engine.bfly_ct(u, b, w)
        a[:, :, u_idx] = hi
        a[:, :, v_idx] = lo
    return a


def _limb_inverse_planes(
    a: np.ndarray, tw: np.ndarray, n_inv: np.ndarray, engine, n: int
) -> np.ndarray:
    for u_idx, v_idx, tw_idx in _stage_plan(n, "inverse"):
        u = np.ascontiguousarray(a[:, :, u_idx])
        v = np.ascontiguousarray(a[:, :, v_idx])
        w = np.ascontiguousarray(tw[:, :, tw_idx])
        a[:, :, u_idx] = engine.add_mod(u, v)
        a[:, :, v_idx] = engine.mul_mod(engine.sub_mod(u, v), w)
    return engine.mul_mod(np.ascontiguousarray(a), n_inv)


def _limb_transform(rows, tabs: list[TwiddleTable], direction: str) -> np.ndarray:
    """Stage-parallel limbed NTT of every row, grouped by modulus width."""
    n = tabs[0].n
    out = np.empty((len(tabs), n), dtype=object)
    attr = "psi_rev" if direction == "forward" else "psi_inv_rev"
    for engine, idx in grouped_engines([t.q for t in tabs]):
        sub_tabs = tuple(tabs[i] for i in idx)
        a = _checked_planes(rows, idx, engine, n)
        inverse = direction != "forward"
        if _whole_transform(a, sub_tabs, attr, engine, inverse):
            pass  # all stages ran in one compiled call, in place
        elif direction == "forward":
            a = _limb_forward_planes(
                a, _limb_twiddles(sub_tabs, attr, engine.k), engine, n
            )
        else:
            a = _limb_inverse_planes(
                a,
                _limb_twiddles(sub_tabs, attr, engine.k),
                _limb_n_inv(sub_tabs, engine.k),
                engine,
                n,
            )
        out[idx] = compose(a)
    return out


def _limb_polymul(a_rows, b_rows, tabs: list[TwiddleTable]) -> np.ndarray:
    """Rowwise limbed negacyclic products (decompose/compose only once)."""
    n = tabs[0].n
    out = np.empty((len(tabs), n), dtype=object)
    for engine, idx in grouped_engines([t.q for t in tabs]):
        sub_tabs = tuple(tabs[i] for i in idx)
        a = _checked_planes(a_rows, idx, engine, n)
        b = _checked_planes(b_rows, idx, engine, n)
        if not _whole_transform(a, sub_tabs, "psi_rev", engine, False):
            a = _limb_forward_planes(
                a, _limb_twiddles(sub_tabs, "psi_rev", engine.k), engine, n
            )
        if not _whole_transform(b, sub_tabs, "psi_rev", engine, False):
            b = _limb_forward_planes(
                b, _limb_twiddles(sub_tabs, "psi_rev", engine.k), engine, n
            )
        prod = np.ascontiguousarray(engine.mul_mod(a, b))
        if not _whole_transform(prod, sub_tabs, "psi_inv_rev", engine, True):
            prod = _limb_inverse_planes(
                prod,
                _limb_twiddles(sub_tabs, "psi_inv_rev", engine.k),
                _limb_n_inv(sub_tabs, engine.k),
                engine,
                n,
            )
        out[idx] = compose(prod)
    return out


def _row_count(rows) -> int:
    return rows.shape[0] if isinstance(rows, np.ndarray) else len(rows)


def batch_ntt_forward(
    rows, tables: TwiddleTable | Sequence[TwiddleTable]
) -> np.ndarray:
    """Forward negacyclic NTT of every row (natural in, bit-reversed out).

    Args:
        rows: ``(B, n)`` residue matrix (any nested sequence or ndarray).
        tables: one :class:`TwiddleTable` shared by all rows, or one per row
            (the RNS-tower case, each row under its own prime).

    Returns int64 rows for narrow moduli; exact Python-int (object) rows
    for wide moduli, computed on the multi-limb engine.
    """
    tabs = _normalize_tables(_row_count(rows), tables)
    if any(t.q >= INT64_MODULUS_LIMIT for t in tabs):
        return _limb_transform(rows, tabs, "forward")
    a, q, psi_rev, _ = _stack(rows, tables, "psi_rev")
    n = a.shape[1]
    t = n
    m = 1
    while m < n:
        t //= 2
        for i in range(m):
            j1 = 2 * i * t
            s = psi_rev[:, m + i : m + i + 1]  # (B, 1) per-row twiddle
            u = a[:, j1 : j1 + t].copy()
            v = a[:, j1 + t : j1 + 2 * t] * s % q
            a[:, j1 : j1 + t] = (u + v) % q
            a[:, j1 + t : j1 + 2 * t] = (u - v) % q
        m *= 2
    return a


def batch_ntt_inverse(
    rows, tables: TwiddleTable | Sequence[TwiddleTable]
) -> np.ndarray:
    """Inverse negacyclic NTT of every row (bit-reversed in, natural out)."""
    tabs = _normalize_tables(_row_count(rows), tables)
    if any(t.q >= INT64_MODULUS_LIMIT for t in tabs):
        return _limb_transform(rows, tabs, "inverse")
    a, q, psi_inv_rev, tabs = _stack(rows, tables, "psi_inv_rev")
    n = a.shape[1]
    t = 1
    m = n
    while m > 1:
        h = m // 2
        j1 = 0
        for i in range(h):
            s = psi_inv_rev[:, h + i : h + i + 1]
            u = a[:, j1 : j1 + t].copy()
            v = a[:, j1 + t : j1 + 2 * t].copy()
            a[:, j1 : j1 + t] = (u + v) % q
            a[:, j1 + t : j1 + 2 * t] = (u - v) * s % q
            j1 += 2 * t
        t *= 2
        m = h
    n_inv = as_array([t_.n_inv for t_ in tabs], a.dtype).reshape(len(tabs), 1)
    return a * n_inv % q


def batch_negacyclic_polymul(
    a_rows, b_rows, tables: TwiddleTable | Sequence[TwiddleTable]
) -> np.ndarray:
    """Rowwise negacyclic polynomial products via batched NTTs.

    Computes ``a_rows[i] * b_rows[i]`` in ``Z_{q_i}[x]/(x^n + 1)`` for every
    row in three batched passes (two forward, one inverse), the tower-sweep
    analogue of :func:`repro.ntt.polymul.negacyclic_polymul`.  Wide-modulus
    rows stay in limb planes across all three passes (one decompose in,
    one compose out).
    """
    tabs = _normalize_tables(_row_count(a_rows), tables)
    if any(t.q >= INT64_MODULUS_LIMIT for t in tabs):
        return _limb_polymul(a_rows, b_rows, tabs)
    a_hat = batch_ntt_forward(a_rows, tables)
    b_hat = batch_ntt_forward(b_rows, tables)
    tabs = _normalize_tables(a_hat.shape[0], tables)
    q_col = as_array([t.q for t in tabs], a_hat.dtype).reshape(len(tabs), 1)
    return batch_ntt_inverse(vec_mod_mul(a_hat, b_hat, q_col), tables)
