"""Batched negacyclic NTTs over numpy rows.

One call transforms a ``(B, n)`` matrix of residue rows -- B independent
polynomials, or the B towers of an RNS ciphertext, each row under its own
modulus.  The butterflies are the exact Longa-Naehrig recurrences of
:mod:`repro.ntt.reference`, applied to array slices instead of scalars, so
the outputs are bit-identical row-for-row with the scalar oracle (the
property suite fuzzes this).

Built on :mod:`repro.modmath.vectorized`: rows under sub-31-bit moduli run
on the int64 fast path; 128-bit moduli use object (arbitrary-precision)
lanes and stay exact.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.modmath.vectorized import (
    INT64_MODULUS_LIMIT,
    as_array,
    vec_mod_mul,
)
from repro.ntt.twiddles import TwiddleTable


def _normalize_tables(
    row_count: int, tables: TwiddleTable | Sequence[TwiddleTable]
) -> list[TwiddleTable]:
    if isinstance(tables, TwiddleTable):
        tables = [tables] * row_count
    tables = list(tables)
    if len(tables) != row_count:
        raise ValueError("need one twiddle table per row (or one shared)")
    if any(t.n != tables[0].n for t in tables):
        raise ValueError("every table must share one ring degree")
    return tables


def _stack(
    rows, tables: TwiddleTable | Sequence[TwiddleTable], twiddle_attr: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[TwiddleTable]]:
    """Rows, per-row modulus column and per-row twiddle matrix, one dtype.

    The dtype rule matches :func:`repro.modmath.vectorized.residue_matrix`:
    int64 iff every row's modulus is int64-eligible, object otherwise.  One
    conversion builds the (always private, mutable) row matrix directly.
    """
    row_count = rows.shape[0] if isinstance(rows, np.ndarray) else len(rows)
    tabs = _normalize_tables(row_count, tables)
    dtype = (
        np.dtype(np.int64)
        if all(t.q < INT64_MODULUS_LIMIT for t in tabs)
        else np.dtype(object)
    )
    a = np.array(rows, dtype=dtype)  # copies, so the sweeps can mutate
    if a.ndim != 2 or a.shape[1] != tabs[0].n:
        raise ValueError("expected a (batch, n) matrix matching the tables")
    q_col = as_array([t.q for t in tabs], dtype).reshape(len(tabs), 1)
    tw = as_array([list(getattr(t, twiddle_attr)) for t in tabs], dtype)
    for t, row in zip(tabs, a):
        if ((row < 0) | (row >= t.q)).any():
            raise ValueError("coefficients must be canonical residues")
    return a, q_col, tw, tabs


def batch_ntt_forward(
    rows, tables: TwiddleTable | Sequence[TwiddleTable]
) -> np.ndarray:
    """Forward negacyclic NTT of every row (natural in, bit-reversed out).

    Args:
        rows: ``(B, n)`` residue matrix (any nested sequence or ndarray).
        tables: one :class:`TwiddleTable` shared by all rows, or one per row
            (the RNS-tower case, each row under its own prime).
    """
    a, q, psi_rev, _ = _stack(rows, tables, "psi_rev")
    n = a.shape[1]
    t = n
    m = 1
    while m < n:
        t //= 2
        for i in range(m):
            j1 = 2 * i * t
            s = psi_rev[:, m + i : m + i + 1]  # (B, 1) per-row twiddle
            u = a[:, j1 : j1 + t].copy()
            v = a[:, j1 + t : j1 + 2 * t] * s % q
            a[:, j1 : j1 + t] = (u + v) % q
            a[:, j1 + t : j1 + 2 * t] = (u - v) % q
        m *= 2
    return a


def batch_ntt_inverse(
    rows, tables: TwiddleTable | Sequence[TwiddleTable]
) -> np.ndarray:
    """Inverse negacyclic NTT of every row (bit-reversed in, natural out)."""
    a, q, psi_inv_rev, tabs = _stack(rows, tables, "psi_inv_rev")
    n = a.shape[1]
    t = 1
    m = n
    while m > 1:
        h = m // 2
        j1 = 0
        for i in range(h):
            s = psi_inv_rev[:, h + i : h + i + 1]
            u = a[:, j1 : j1 + t].copy()
            v = a[:, j1 + t : j1 + 2 * t].copy()
            a[:, j1 : j1 + t] = (u + v) % q
            a[:, j1 + t : j1 + 2 * t] = (u - v) * s % q
            j1 += 2 * t
        t *= 2
        m = h
    n_inv = as_array([t_.n_inv for t_ in tabs], a.dtype).reshape(len(tabs), 1)
    return a * n_inv % q


def batch_negacyclic_polymul(
    a_rows, b_rows, tables: TwiddleTable | Sequence[TwiddleTable]
) -> np.ndarray:
    """Rowwise negacyclic polynomial products via batched NTTs.

    Computes ``a_rows[i] * b_rows[i]`` in ``Z_{q_i}[x]/(x^n + 1)`` for every
    row in three batched passes (two forward, one inverse), the tower-sweep
    analogue of :func:`repro.ntt.polymul.negacyclic_polymul`.
    """
    a_hat = batch_ntt_forward(a_rows, tables)
    b_hat = batch_ntt_forward(b_rows, tables)
    tabs = _normalize_tables(a_hat.shape[0], tables)
    q_col = as_array([t.q for t in tabs], a_hat.dtype).reshape(len(tabs), 1)
    return batch_ntt_inverse(vec_mod_mul(a_hat, b_hat, q_col), tables)
