"""Negacyclic polynomial multiplication through the NTT.

The reason rings care about NTTs at all: multiplication in
Z_q[x]/(x^n + 1) becomes a pointwise product between forward transforms
(section II-C of the paper; NTT is ~94% of homomorphic multiply time).

:func:`integer_negacyclic_convolution` extends this to *exact integer*
products (signed coefficients, no modulus): the product is computed in an
RNS basis of int64-friendly NTT primes -- all residue towers riding the
batched transform's row axis -- and CRT-reconstructed.  This is how the
HE layer's tensor products (which live over Z before their t/q or
modulus-chain rescaling) run on the batched backend while staying
bit-exact with the schoolbook reference.
"""

from __future__ import annotations

import functools
from collections.abc import Sequence

from repro.ntt.reference import ntt_forward, ntt_inverse
from repro.ntt.twiddles import TwiddleTable


def pointwise_mul(a: Sequence[int], b: Sequence[int], q: int) -> list[int]:
    """Hadamard product mod q (both operands in the same NTT ordering)."""
    if len(a) != len(b):
        raise ValueError("operands must have equal length")
    return [x * y % q for x, y in zip(a, b)]


def negacyclic_polymul(
    a: Sequence[int], b: Sequence[int], table: TwiddleTable
) -> list[int]:
    """Multiply two ring elements via forward NTT, pointwise, inverse NTT.

    O(n log n) instead of the schoolbook O(n^2); validated against
    :func:`repro.ntt.naive.naive_negacyclic_convolution` in the test suite.
    """
    a_hat = ntt_forward(a, table)
    b_hat = ntt_forward(b, table)
    c_hat = pointwise_mul(a_hat, b_hat, table.q)
    return ntt_inverse(c_hat, table)


_CONV_PRIME_BITS = 30  # int64 fast path; generate() keeps primes >= 2^29


@functools.lru_cache(maxsize=None)
def _conv_basis(n: int, num_primes: int):
    """A CRT basis of int64-friendly NTT primes for exact n-point products."""
    from repro.rns.basis import RnsBasis

    basis = RnsBasis.generate(num_primes, _CONV_PRIME_BITS, n)
    tables = tuple(TwiddleTable.for_ring(n, q) for q in basis.moduli)
    return basis, tables


def integer_negacyclic_convolution(
    a: Sequence[int], b: Sequence[int]
) -> list[int]:
    """Exact negacyclic convolution of signed integer sequences over Z.

    Computes ``a * b mod (x^n + 1)`` with no coefficient modulus: residues
    of both operands are taken in enough int64-friendly NTT primes to
    bound the true coefficients, every tower runs through one batched
    transform pass, and the CRT recomposes the exact signed integers.
    """
    if len(a) != len(b):
        raise ValueError("operands must have equal length")
    n = len(a)
    from repro.ntt.vectorized import batch_negacyclic_polymul

    ma = max((abs(v) for v in a), default=0) or 1
    mb = max((abs(v) for v in b), default=0) or 1
    bits = (2 * n * ma * mb).bit_length() + 1
    basis, tables = _conv_basis(n, -(-bits // (_CONV_PRIME_BITS - 1)))
    rows_a = [[v % q for v in a] for q in basis.moduli]
    rows_b = [[v % q for v in b] for q in basis.moduli]
    prod = batch_negacyclic_polymul(rows_a, rows_b, tables)
    cols = prod.tolist()
    return [
        basis.centered_compose([cols[limb][i] for limb in range(len(cols))])
        for i in range(n)
    ]
