"""Negacyclic polynomial multiplication through the NTT.

The reason rings care about NTTs at all: multiplication in
Z_q[x]/(x^n + 1) becomes a pointwise product between forward transforms
(section II-C of the paper; NTT is ~94% of homomorphic multiply time).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.ntt.reference import ntt_forward, ntt_inverse
from repro.ntt.twiddles import TwiddleTable


def pointwise_mul(a: Sequence[int], b: Sequence[int], q: int) -> list[int]:
    """Hadamard product mod q (both operands in the same NTT ordering)."""
    if len(a) != len(b):
        raise ValueError("operands must have equal length")
    return [x * y % q for x, y in zip(a, b)]


def negacyclic_polymul(
    a: Sequence[int], b: Sequence[int], table: TwiddleTable
) -> list[int]:
    """Multiply two ring elements via forward NTT, pointwise, inverse NTT.

    O(n log n) instead of the schoolbook O(n^2); validated against
    :func:`repro.ntt.naive.naive_negacyclic_convolution` in the test suite.
    """
    a_hat = ntt_forward(a, table)
    b_hat = ntt_forward(b, table)
    c_hat = pointwise_mul(a_hat, b_hat, table.q)
    return ntt_inverse(c_hat, table)
