"""Quadratic-time transforms: the ground truth beneath the ground truth.

The iterative reference NTT is itself validated against these O(n^2)
implementations (for small n), closing the loop the paper closes with
OpenFHE test vectors.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.ntt.twiddles import TwiddleTable


def naive_negacyclic_ntt(values: Sequence[int], table: TwiddleTable) -> list[int]:
    """Direct evaluation: out[k] = sum_j a[j] * psi^(j*(2k+1)) mod q.

    Output is in *natural* frequency order; compose with the bit-reversal
    permutation to compare against :func:`repro.ntt.reference.ntt_forward`.
    """
    n, q, psi = table.n, table.q, table.psi
    if len(values) != n:
        raise ValueError(f"expected {n} coefficients, got {len(values)}")
    out = []
    for k in range(n):
        base = pow(psi, 2 * k + 1, q)
        acc = 0
        term = 1  # psi^(j*(2k+1)) built incrementally
        for j in range(n):
            acc = (acc + values[j] * term) % q
            term = term * base % q
        out.append(acc)
    return out


def naive_negacyclic_convolution(
    a: Sequence[int], b: Sequence[int], q: int
) -> list[int]:
    """Schoolbook multiplication in Z_q[x]/(x^n + 1).

    The x^n = -1 wraparound is what distinguishes the negacyclic ring from a
    plain cyclic convolution; HE ciphertext polynomials live here.
    """
    n = len(a)
    if len(b) != n:
        raise ValueError("operands must have equal length")
    out = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            k = i + j
            prod = ai * bj
            if k < n:
                out[k] = (out[k] + prod) % q
            else:
                out[k - n] = (out[k - n] - prod) % q
    return out


def naive_cyclic_convolution(a: Sequence[int], b: Sequence[int], q: int) -> list[int]:
    """Schoolbook multiplication in Z_q[x]/(x^n - 1) (for DFT sanity tests)."""
    n = len(a)
    if len(b) != n:
        raise ValueError("operands must have equal length")
    out = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[(i + j) % n] = (out[(i + j) % n] + ai * bj) % q
    return out
