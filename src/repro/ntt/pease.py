"""Constant-geometry (Pease / Korn-Lambiotte) NTT dataflow, at array level.

This module is the mathematical heart of the RPU reproduction.  The paper's
SPIRAL backend re-formulates the radix-2 NTT with the Korn-Lambiotte /
Pease breakdown so that *every* stage performs identical work:

* butterflies always pair position ``p`` with position ``p + n/2`` — on the
  RPU that is a lane-aligned butterfly between vector register ``j`` and
  vector register ``j + m/2`` (m = n/512 architectural vectors);
* stages are separated by one global perfect shuffle (the stride permutation
  ``L^n_{n/2}``) — on the RPU that is one ``UNPKLO`` + one ``UNPKHI`` per
  vector pair (2 shuffle instructions per output pair);
* the shuffle after the final stage is folded into stride-2 stores, exactly
  as in the paper's Listing 1 (``_vstores_512x128i(..., 2)``).

For a 64K-point NTT this yields 16 stages x 64 butterflies = **1024 compute
instructions** and 15 stages x 128 shuffles = **1920 shuffle instructions**,
the instruction mix the paper reports in section VI-F.

Closed forms (derived by tracking the position->reference-index permutation,
which after ``s`` interleaves is a right bit-rotation by ``s``):

* the twiddle for stage ``s`` at pair-position ``p`` is
  ``psi_rev[2**s + (p mod 2**s)]`` — per-stage twiddle vectors are periodic
  with period ``2**s``, so early stages broadcast a scalar, middle stages
  use one REPEATED-mode load per stage, and late stages read contiguous
  slices of the single ``psi_rev`` table;
* the final value at position ``p`` is reference output element
  ``rotl1(p)`` — a stride-2 interleaving, hence stride-2 stores.

Everything here is validated against :mod:`repro.ntt.reference` by the test
suite; :mod:`repro.spiral.ntt_codegen` consumes the same closed forms.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.ntt.twiddles import TwiddleTable
from repro.util.bits import ilog2


def pease_twiddle_index(stage: int, pair_position: int) -> int:
    """Index into psi_rev for the butterfly at ``pair_position`` of ``stage``.

    ``stage`` counts from 0 (first); ``pair_position`` ranges over [0, n/2).
    """
    return (1 << stage) + (pair_position & ((1 << stage) - 1))


def pease_output_index(position: int, n: int) -> int:
    """Reference-output index held at ``position`` after the final stage.

    This is a 1-bit left rotation of the log2(n)-bit position — i.e. the
    final layout interleaves the low and high halves with stride 2, which is
    why generated kernels finish with stride-2 stores.
    """
    k = ilog2(n)
    return ((position << 1) | (position >> (k - 1))) & (n - 1)


def interleave(values: list) -> list:
    """The inter-stage perfect shuffle: out[2i]=in[i], out[2i+1]=in[n/2+i]."""
    n = len(values)
    half = n // 2
    out = [None] * n
    for i in range(half):
        out[2 * i] = values[i]
        out[2 * i + 1] = values[half + i]
    return out


def pack(values: list) -> list:
    """Inverse of :func:`interleave`: out[i]=in[2i], out[n/2+i]=in[2i+1]."""
    n = len(values)
    half = n // 2
    out = [None] * n
    for i in range(half):
        out[i] = values[2 * i]
        out[half + i] = values[2 * i + 1]
    return out


def stage_permutation(stage: int, n: int) -> list[int]:
    """Position -> reference-index map in effect during ``stage``.

    After ``s`` interleaves the map is a right rotation of the position's
    log2(n) bits by ``s``.  Exposed for the symbolic verification tests and
    for the code generator's assertions.
    """
    k = ilog2(n)
    mask = n - 1

    def rotr(p: int) -> int:
        return ((p >> stage) | (p << (k - stage))) & mask

    return [rotr(p) for p in range(n)]


def verify_alignment(n: int) -> None:
    """Assert the Pease pairing/twiddle closed forms for ring degree ``n``.

    Checks, for every stage s and pair position p, that the two positions
    (p, p+n/2) hold reference indices (j, j+t) forming a valid CT butterfly
    of stage s, and that the closed-form twiddle index matches the reference
    algorithm's ``m + j // (2t)``.
    """
    k = ilog2(n)
    half = n // 2
    perm = list(range(n))
    for s in range(k):
        m = 1 << s
        t = n >> (s + 1)
        for p in range(half):
            j = perm[p]
            if perm[p + half] != j + t:
                raise AssertionError(
                    f"stage {s}, position {p}: partner misaligned "
                    f"({perm[p + half]} != {j + t})"
                )
            expected = m + j // (2 * t)
            actual = pease_twiddle_index(s, p)
            if expected != actual:
                raise AssertionError(
                    f"stage {s}, position {p}: twiddle {actual} != {expected}"
                )
        if s != k - 1:
            perm = interleave(perm)
    for p in range(n):
        if perm[p] != pease_output_index(p, n):
            raise AssertionError(f"final layout mismatch at position {p}")


def pease_ntt_forward(values: Sequence[int], table: TwiddleTable) -> list[int]:
    """Forward negacyclic NTT via the constant-geometry dataflow.

    Bit-for-bit equal to :func:`repro.ntt.reference.ntt_forward` (natural
    input, bit-reversed output); the loop structure mirrors the generated
    B512 kernels one-to-one.
    """
    n, q = table.n, table.q
    if len(values) != n:
        raise ValueError(f"expected {n} coefficients, got {len(values)}")
    k = ilog2(n)
    half = n // 2
    y = list(values)
    for s in range(k):
        nxt = [0] * n
        for p in range(half):
            tw = table.psi_rev[pease_twiddle_index(s, p)]
            u = y[p]
            v = y[p + half] * tw % q
            nxt[p] = (u + v) % q
            nxt[p + half] = (u - v) % q
        y = interleave(nxt) if s != k - 1 else nxt
    out = [0] * n
    for p in range(n):
        out[pease_output_index(p, n)] = y[p]
    return out


def pease_ntt_inverse(values: Sequence[int], table: TwiddleTable) -> list[int]:
    """Inverse negacyclic NTT via the reversed constant-geometry dataflow.

    Bit-reversed input, natural output.  Stages run s = k-1 .. 0 with
    Gentleman-Sande butterflies and psi-inverse twiddles; the pack shuffle
    (inverse of the forward interleave) sits between stages; the n^{-1}
    scaling is applied at the end, as the generated kernels do with a final
    vector-scalar multiply pass.
    """
    n, q = table.n, table.q
    if len(values) != n:
        raise ValueError(f"expected {n} coefficients, got {len(values)}")
    k = ilog2(n)
    half = n // 2
    # Gather the forward kernel's storage layout back into position space.
    y = [values[pease_output_index(p, n)] for p in range(n)]
    for s in range(k - 1, -1, -1):
        nxt = [0] * n
        for p in range(half):
            tw = table.psi_inv_rev[pease_twiddle_index(s, p)]
            u = y[p]
            v = y[p + half]
            nxt[p] = (u + v) % q
            nxt[p + half] = (u - v) * tw % q
        y = pack(nxt) if s != 0 else nxt
    n_inv = table.n_inv
    return [x * n_inv % q for x in y]
