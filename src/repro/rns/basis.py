"""RNS bases: pairwise-coprime moduli with CRT composition.

An :class:`RnsBasis` holds L NTT-friendly primes q_0..q_{L-1}; integers in
[0, Q) with Q = prod(q_i) map to residue vectors and back via the Chinese
Remainder Theorem.  Each limb is guaranteed to support a negacyclic NTT of
the requested ring degree (q_i ≡ 1 mod 2n).

Beyond plain composition the basis knows the two RNS-native primitives a
homomorphic-op engine needs (both exact, never approximate):

* **Fast base conversion** (:meth:`RnsBasis.fast_base_convert`): map the
  residues of x to moduli *outside* the basis without composing the wide
  integer.  The overflow count alpha (how many multiples of Q the CRT
  interpolation sum exceeds x by) is recovered exactly from the rational
  accumulation ``sum v_i / q_i`` -- the Shenoy-Kumaresan idea with an
  exact fraction instead of a redundant modulus.  The CKKS level engine
  only needs the degenerate single-word case (digit/delta spreading);
  the full conversion is the primitive a BEHZ/HPS-style multi-limb BFV
  multiply rides on (the ROADMAP follow-up) and is property-fuzzed now
  so that path starts from proven ground.
* **Scale-and-round basis drop** (:meth:`RnsBasis.scale_and_round`):
  divide the *centered* value by the last limb with round-half-up and
  return residues over the reduced basis -- the digit arithmetic behind
  both the CKKS rescale and the P^{-1} mod-down of hybrid key-switching.
  The identity it implements:

      floor((centered(x) + q_last//2) / q_last) mod q_i
        == (x_i + half - delta) * q_last^{-1} mod q_i
      with delta = (x_last + half) mod q_last

  which is pure per-tower modular arithmetic once ``delta`` is known --
  exactly the shape the RPU's rescale kernel executes
  (:mod:`repro.spiral.heops`).  :meth:`rescale_constants` exposes the
  per-tower constants those kernels preload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction

from repro.modmath.arith import mod_inv
from repro.modmath.primes import find_ntt_prime, is_prime
from repro.util.bits import is_power_of_two


@dataclass(frozen=True)
class RescaleConstants:
    """Per-tower constants of one scale-and-round basis drop.

    Attributes:
        prime: the dropped limb q_last.
        half: ``q_last // 2`` (the round-half offset).
        half_mod: ``half mod q_i`` per remaining limb (SRF preloads).
        prime_inv: ``q_last^{-1} mod q_i`` per remaining limb.
    """

    prime: int
    half: int
    half_mod: tuple[int, ...]
    prime_inv: tuple[int, ...]


@dataclass
class RnsBasis:
    """A list of pairwise-coprime NTT-friendly primes and CRT constants.

    Attributes:
        moduli: the limb primes q_i.
        ring_degree: the polynomial degree n every limb must support.
    """

    moduli: tuple[int, ...]
    ring_degree: int
    modulus_product: int = field(init=False)
    _crt_weights: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        if not self.moduli:
            raise ValueError("an RNS basis needs at least one limb")
        if not is_power_of_two(self.ring_degree):
            raise ValueError("ring degree must be a power of two")
        for i, q in enumerate(self.moduli):
            if not is_prime(q):
                raise ValueError(f"limb {i} ({q}) is not prime")
            if (q - 1) % (2 * self.ring_degree) != 0:
                raise ValueError(
                    f"limb {i} ({q}) is not NTT-friendly for n={self.ring_degree}"
                )
        for i, qi in enumerate(self.moduli):
            for qj in self.moduli[i + 1 :]:
                if math.gcd(qi, qj) != 1:
                    raise ValueError("limbs must be pairwise coprime")
        big_q = 1
        for q in self.moduli:
            big_q *= q
        self.modulus_product = big_q
        weights = []
        for q in self.moduli:
            partial = big_q // q
            weights.append(partial * mod_inv(partial % q, q))
        self._crt_weights = tuple(weights)

    @staticmethod
    def generate(
        num_limbs: int, limb_bits: int, ring_degree: int
    ) -> "RnsBasis":
        """Generate a basis of ``num_limbs`` distinct ``limb_bits``-bit primes.

        Walks the NTT-prime search downward so every limb is distinct.
        """
        moduli: list[int] = []
        step = 2 * ring_degree
        hi = (1 << limb_bits) - 1
        k = (hi - 1) // step
        while len(moduli) < num_limbs and k > 0:
            q = k * step + 1
            if q >= 1 << (limb_bits - 1) and is_prime(q):
                moduli.append(q)
            k -= 1
        if len(moduli) < num_limbs:
            raise ValueError(
                f"could not find {num_limbs} {limb_bits}-bit primes for "
                f"n={ring_degree}"
            )
        return RnsBasis(tuple(moduli), ring_degree)

    @staticmethod
    def single(limb_bits: int, ring_degree: int) -> "RnsBasis":
        """The degenerate one-limb basis (non-RNS computation, section II-B)."""
        return RnsBasis((find_ntt_prime(limb_bits, ring_degree),), ring_degree)

    @property
    def num_limbs(self) -> int:
        return len(self.moduli)

    def decompose(self, value: int) -> tuple[int, ...]:
        """Map an integer in [0, Q) to its residue vector."""
        if not 0 <= value < self.modulus_product:
            raise ValueError("value outside [0, Q)")
        return tuple(value % q for q in self.moduli)

    def compose(self, residues: tuple[int, ...] | list[int]) -> int:
        """CRT-reconstruct the integer in [0, Q) from its residues."""
        if len(residues) != self.num_limbs:
            raise ValueError("residue count does not match basis size")
        acc = 0
        for r, w in zip(residues, self._crt_weights):
            acc += r * w
        return acc % self.modulus_product

    def centered_compose(self, residues: tuple[int, ...] | list[int]) -> int:
        """CRT-reconstruct into the centered range (-Q/2, Q/2]."""
        value = self.compose(residues)
        if value > self.modulus_product // 2:
            value -= self.modulus_product
        return value

    # -- RNS-native primitives ---------------------------------------------
    def qhat(self, i: int) -> int:
        """The CRT cofactor Q / q_i (a wide integer)."""
        return self.modulus_product // self.moduli[i]

    def qhat_inv(self, i: int) -> int:
        """``(Q / q_i)^{-1} mod q_i`` -- the digit-decomposition constant."""
        q = self.moduli[i]
        return mod_inv(self.qhat(i) % q, q)

    def digit_constants(self) -> tuple[int, ...]:
        """``qhat_inv`` for every limb: one vector-scalar multiply per tower
        turns a residue plane into its CRT digits (the RNS decomposition
        used by key switching)."""
        return tuple(self.qhat_inv(i) for i in range(self.num_limbs))

    def fast_base_convert(
        self, residues: tuple[int, ...] | list[int], targets: tuple[int, ...]
    ) -> tuple[int, ...]:
        """Exact residues of x mod each target modulus, without composing x.

        Computes ``v_i = x_i * qhat_inv_i mod q_i`` per limb, recovers the
        interpolation overflow ``alpha = floor(sum v_i / q_i)`` exactly via
        rational accumulation, and evaluates
        ``x mod p = (sum v_i * (qhat_i mod p) - alpha * (Q mod p)) mod p``
        with only small-integer arithmetic per target.
        """
        if len(residues) != self.num_limbs:
            raise ValueError("residue count does not match basis size")
        vs = [
            (r * self.qhat_inv(i)) % q
            for i, (r, q) in enumerate(zip(residues, self.moduli))
        ]
        alpha = int(sum(Fraction(v, q) for v, q in zip(vs, self.moduli)))
        out = []
        for p in targets:
            acc = -alpha * (self.modulus_product % p)
            for i, v in enumerate(vs):
                acc += v * (self.qhat(i) % p)
            out.append(acc % p)
        return tuple(out)

    def reduced(self) -> "RnsBasis":
        """The basis with its last limb dropped."""
        if self.num_limbs < 2:
            raise ValueError("cannot drop the only limb of a basis")
        return RnsBasis(self.moduli[:-1], self.ring_degree)

    def rescale_constants(self) -> RescaleConstants:
        """The per-tower constants of dropping the last limb with rounding."""
        if self.num_limbs < 2:
            raise ValueError("cannot drop the only limb of a basis")
        prime = self.moduli[-1]
        half = prime // 2
        rest = self.moduli[:-1]
        return RescaleConstants(
            prime=prime,
            half=half,
            half_mod=tuple(half % q for q in rest),
            prime_inv=tuple(mod_inv(prime % q, q) for q in rest),
        )

    def scale_and_round(
        self, residues: tuple[int, ...] | list[int]
    ) -> tuple[int, ...]:
        """Drop the last limb: round(centered(x) / q_last) residue-wise.

        Rounding is round-half-up on the centered value (the CKKS rescale
        convention, ``(centered + q_last//2) // q_last``), computed with
        per-tower modular arithmetic only -- bit-identical to the wide
        integer formula, which the property-fuzz suite asserts.
        """
        if len(residues) != self.num_limbs:
            raise ValueError("residue count does not match basis size")
        c = self.rescale_constants()
        delta = (residues[-1] + c.half) % c.prime
        return tuple(
            ((r + h - delta) % q) * inv % q
            for r, q, h, inv in zip(
                residues, self.moduli[:-1], c.half_mod, c.prime_inv
            )
        )

    def scale_and_round_rows(
        self, towers: list[list[int]]
    ) -> list[list[int]]:
        """:meth:`scale_and_round` over whole residue planes.

        ``towers`` holds one row per limb (the RNS-resident layout of a
        ring element); returns one row per *remaining* limb.  This is the
        software twin of the generated rescale kernel
        (:func:`repro.spiral.heops.generate_rescale_program`).
        """
        if len(towers) != self.num_limbs:
            raise ValueError("tower count does not match basis size")
        c = self.rescale_constants()
        deltas = [(v + c.half) % c.prime for v in towers[-1]]
        return [
            [
                ((r + h - d) % q) * inv % q
                for r, d in zip(row, deltas)
            ]
            for row, q, h, inv in zip(
                towers, self.moduli[:-1], c.half_mod, c.prime_inv
            )
        ]
