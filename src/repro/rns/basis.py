"""RNS bases: pairwise-coprime moduli with CRT composition.

An :class:`RnsBasis` holds L NTT-friendly primes q_0..q_{L-1}; integers in
[0, Q) with Q = prod(q_i) map to residue vectors and back via the Chinese
Remainder Theorem.  Each limb is guaranteed to support a negacyclic NTT of
the requested ring degree (q_i ≡ 1 mod 2n).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.modmath.arith import mod_inv
from repro.modmath.primes import find_ntt_prime, is_prime
from repro.util.bits import is_power_of_two


@dataclass
class RnsBasis:
    """A list of pairwise-coprime NTT-friendly primes and CRT constants.

    Attributes:
        moduli: the limb primes q_i.
        ring_degree: the polynomial degree n every limb must support.
    """

    moduli: tuple[int, ...]
    ring_degree: int
    modulus_product: int = field(init=False)
    _crt_weights: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        if not self.moduli:
            raise ValueError("an RNS basis needs at least one limb")
        if not is_power_of_two(self.ring_degree):
            raise ValueError("ring degree must be a power of two")
        for i, q in enumerate(self.moduli):
            if not is_prime(q):
                raise ValueError(f"limb {i} ({q}) is not prime")
            if (q - 1) % (2 * self.ring_degree) != 0:
                raise ValueError(
                    f"limb {i} ({q}) is not NTT-friendly for n={self.ring_degree}"
                )
        for i, qi in enumerate(self.moduli):
            for qj in self.moduli[i + 1 :]:
                if math.gcd(qi, qj) != 1:
                    raise ValueError("limbs must be pairwise coprime")
        big_q = 1
        for q in self.moduli:
            big_q *= q
        self.modulus_product = big_q
        weights = []
        for q in self.moduli:
            partial = big_q // q
            weights.append(partial * mod_inv(partial % q, q))
        self._crt_weights = tuple(weights)

    @staticmethod
    def generate(
        num_limbs: int, limb_bits: int, ring_degree: int
    ) -> "RnsBasis":
        """Generate a basis of ``num_limbs`` distinct ``limb_bits``-bit primes.

        Walks the NTT-prime search downward so every limb is distinct.
        """
        moduli: list[int] = []
        step = 2 * ring_degree
        hi = (1 << limb_bits) - 1
        k = (hi - 1) // step
        while len(moduli) < num_limbs and k > 0:
            q = k * step + 1
            if q >= 1 << (limb_bits - 1) and is_prime(q):
                moduli.append(q)
            k -= 1
        if len(moduli) < num_limbs:
            raise ValueError(
                f"could not find {num_limbs} {limb_bits}-bit primes for "
                f"n={ring_degree}"
            )
        return RnsBasis(tuple(moduli), ring_degree)

    @staticmethod
    def single(limb_bits: int, ring_degree: int) -> "RnsBasis":
        """The degenerate one-limb basis (non-RNS computation, section II-B)."""
        return RnsBasis((find_ntt_prime(limb_bits, ring_degree),), ring_degree)

    @property
    def num_limbs(self) -> int:
        return len(self.moduli)

    def decompose(self, value: int) -> tuple[int, ...]:
        """Map an integer in [0, Q) to its residue vector."""
        if not 0 <= value < self.modulus_product:
            raise ValueError("value outside [0, Q)")
        return tuple(value % q for q in self.moduli)

    def compose(self, residues: tuple[int, ...] | list[int]) -> int:
        """CRT-reconstruct the integer in [0, Q) from its residues."""
        if len(residues) != self.num_limbs:
            raise ValueError("residue count does not match basis size")
        acc = 0
        for r, w in zip(residues, self._crt_weights):
            acc += r * w
        return acc % self.modulus_product

    def centered_compose(self, residues: tuple[int, ...] | list[int]) -> int:
        """CRT-reconstruct into the centered range (-Q/2, Q/2]."""
        value = self.compose(residues)
        if value > self.modulus_product // 2:
            value -= self.modulus_product
        return value
