"""RNS polynomials: one residue polynomial ("tower") per limb.

During HE multiplication each tower operates independently (paper Fig. 1);
:class:`RnsPolynomial` provides exactly that limb-parallel arithmetic,
including NTT-domain conversion per limb, and CRT reconstruction back to
wide-integer coefficients.

Tower-wide operations dispatch over two backends, mirroring the FEMU:

* ``"scalar"`` -- per-limb Python loops (the original reference path).
* ``"vectorized"`` -- all limbs stacked into one ``(L, n)`` numpy matrix
  with a per-row modulus column (:func:`repro.modmath.vectorized.\
residue_matrix`), so an L-tower add/sub/multiply is a handful of array
  sweeps instead of L × n Python operations.

The default ``"auto"`` picks whichever backend measures faster for the
operation: ``mul`` amortizes three whole NTT passes per tower and wins
vectorized at production ring degrees (1.3-1.7x at n >= 1024 for narrow
moduli; 2-14x for stacks of two or more wide towers on the multi-limb
engine), while ``add``/``sub`` are single sweeps where the list<->array
round-trip costs more than it saves, so they stay scalar; tiny rings and
single wide towers stay scalar for ``mul`` too.  The measured crossover
degree can be tuned without editing source via the
``RPU_VEC_MUL_MIN_DEGREE`` environment variable.  Both backends produce
bit-identical towers (modular arithmetic is exact in either
representation), which the test suite asserts.
"""

from __future__ import annotations

import functools
import os
from collections.abc import Sequence
from dataclasses import dataclass

from repro.modmath.limb import compose, grouped_engines
from repro.modmath.vectorized import (
    INT64_MODULUS_LIMIT,
    residue_matrix,
    vec_mod_add,
    vec_mod_sub,
)
from repro.ntt.polymul import negacyclic_polymul
from repro.ntt.twiddles import TwiddleTable
from repro.ntt.vectorized import (
    batch_negacyclic_polymul,
    batch_ntt_forward,
    batch_ntt_inverse,
)
from repro.rns.basis import RnsBasis

BACKENDS = ("auto", "scalar", "vectorized")

# Below this ring degree the batched NTT's array round-trip overhead beats
# its amortization, so "auto" mul stays scalar (measured; module docstring).
_VEC_MUL_MIN_DEGREE = 512

VEC_MUL_MIN_DEGREE_ENV = "RPU_VEC_MUL_MIN_DEGREE"
"""Environment override for the ``"auto"`` mul crossover ring degree."""


@functools.lru_cache(maxsize=8)
def _parse_min_degree(raw: str) -> int:
    """Validate one ``RPU_VEC_MUL_MIN_DEGREE`` setting (parsed once).

    The cache means a given setting is parsed and validated a single time
    per process, however many tower operations consult the crossover; a
    bad value raises one clear :class:`ValueError` naming the variable
    instead of an arbitrary failure deep inside dispatch.
    """
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{VEC_MUL_MIN_DEGREE_ENV} must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{VEC_MUL_MIN_DEGREE_ENV} must be a positive ring degree, "
            f"got {value}"
        )
    return value


def vec_mul_min_degree() -> int:
    """The ring degree at which ``"auto"`` towers switch to vectorized mul.

    Defaults to the measured crossover (:data:`_VEC_MUL_MIN_DEGREE`);
    deployments can re-tune it per host via ``RPU_VEC_MUL_MIN_DEGREE``
    (validated on first use -- non-integer or non-positive settings raise
    a :class:`ValueError` that names the variable).
    """
    raw = os.environ.get(VEC_MUL_MIN_DEGREE_ENV)
    if raw is None:
        return _VEC_MUL_MIN_DEGREE
    return _parse_min_degree(raw)


def auto_prefers_vectorized(ring_degree: int) -> bool:
    """Whether ``"auto"`` dispatch should batch at this ring degree.

    The one crossover policy shared by the tower layer and the HE
    contexts (:mod:`repro.rlwe.bfv`, :mod:`repro.rlwe.ckks`), so tuning
    ``RPU_VEC_MUL_MIN_DEGREE`` moves every layer together.
    """
    return ring_degree >= vec_mul_min_degree()


def _resolve_backend(backend: str, auto_choice: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected {BACKENDS}")
    return auto_choice if backend == "auto" else backend


def _limb_rows_op(op: str, rows_a, rows_b, moduli) -> list[list[int]]:
    """Tower-stack add/sub on the multi-limb engine (wide moduli).

    Rows are grouped by modulus bit length; each group runs as one stack
    of int64 limb planes -- no object-dtype lanes anywhere.
    """
    out: list[list[int] | None] = [None] * len(moduli)
    for engine, idx in grouped_engines(list(moduli)):
        a = engine.encode([rows_a[i] for i in idx])
        b = engine.encode([rows_b[i] for i in idx])
        res = compose(getattr(engine, op)(a, b))
        for j, i in enumerate(idx):
            out[i] = list(res[j])
    return out


@dataclass
class RnsPolynomial:
    """A ring element represented limb-wise over an :class:`RnsBasis`.

    Attributes:
        basis: the RNS basis.
        towers: one coefficient list per limb, each reduced mod its q_i.
    """

    basis: RnsBasis
    towers: list[list[int]]

    def __post_init__(self) -> None:
        if len(self.towers) != self.basis.num_limbs:
            raise ValueError("tower count must equal the number of limbs")
        n = self.basis.ring_degree
        for tower, q in zip(self.towers, self.basis.moduli):
            if len(tower) != n:
                raise ValueError("every tower must have ring_degree coefficients")
            if any(not 0 <= c < q for c in tower):
                raise ValueError("tower coefficients must be canonical residues")

    @staticmethod
    def from_coefficients(
        coefficients: Sequence[int], basis: RnsBasis
    ) -> "RnsPolynomial":
        """Decompose wide-integer coefficients into residue towers."""
        if len(coefficients) != basis.ring_degree:
            raise ValueError("coefficient count must equal the ring degree")
        towers = [[c % q for c in coefficients] for q in basis.moduli]
        return RnsPolynomial(basis, towers)

    def to_coefficients(self) -> list[int]:
        """CRT-reconstruct wide coefficients in [0, Q)."""
        return [
            self.basis.compose([t[i] for t in self.towers])
            for i in range(self.basis.ring_degree)
        ]

    def _tables(self) -> list[TwiddleTable]:
        n = self.basis.ring_degree
        return [TwiddleTable.for_ring(n, q) for q in self.basis.moduli]

    # -- batched helpers ---------------------------------------------------
    def _matrix(self):
        return residue_matrix(self.towers, self.basis.moduli)

    @staticmethod
    def _from_matrix(basis: RnsBasis, matrix) -> "RnsPolynomial":
        return RnsPolynomial(
            basis, [[int(c) for c in row] for row in matrix.tolist()]
        )

    # -- arithmetic --------------------------------------------------------
    def _wide(self) -> bool:
        return any(q >= INT64_MODULUS_LIMIT for q in self.basis.moduli)

    def add(self, other: "RnsPolynomial", backend: str = "auto") -> "RnsPolynomial":
        """Limb-wise addition (all towers in one pass when vectorized)."""
        self._check_compatible(other)
        if _resolve_backend(backend, "scalar") == "vectorized":
            if self._wide():
                return RnsPolynomial(
                    self.basis,
                    _limb_rows_op(
                        "add_mod", self.towers, other.towers, self.basis.moduli
                    ),
                )
            a, q = self._matrix()
            b, _ = other._matrix()
            return self._from_matrix(self.basis, vec_mod_add(a, b, q))
        towers = [
            [(a + b) % q for a, b in zip(ta, tb)]
            for ta, tb, q in zip(self.towers, other.towers, self.basis.moduli)
        ]
        return RnsPolynomial(self.basis, towers)

    def sub(self, other: "RnsPolynomial", backend: str = "auto") -> "RnsPolynomial":
        """Limb-wise subtraction (all towers in one pass when vectorized)."""
        self._check_compatible(other)
        if _resolve_backend(backend, "scalar") == "vectorized":
            if self._wide():
                return RnsPolynomial(
                    self.basis,
                    _limb_rows_op(
                        "sub_mod", self.towers, other.towers, self.basis.moduli
                    ),
                )
            a, q = self._matrix()
            b, _ = other._matrix()
            return self._from_matrix(self.basis, vec_mod_sub(a, b, q))
        towers = [
            [(a - b) % q for a, b in zip(ta, tb)]
            for ta, tb, q in zip(self.towers, other.towers, self.basis.moduli)
        ]
        return RnsPolynomial(self.basis, towers)

    def mul(self, other: "RnsPolynomial", backend: str = "auto") -> "RnsPolynomial":
        """Limb-wise negacyclic multiplication.

        The scalar backend transforms each tower with its own scalar NTT;
        the vectorized backend runs all L towers through three batched
        passes (two forward NTTs, pointwise, one inverse) -- the RNS tower
        sweep the paper's Fig. 1 parallelizes in hardware.  Wide-modulus
        towers execute on the multi-limb int64 engine; a *single* wide
        tower has no stack to amortize over and measures at parity, so
        ``"auto"`` keeps it scalar.
        """
        self._check_compatible(other)
        auto = (
            "vectorized"
            if auto_prefers_vectorized(self.basis.ring_degree)
            and (not self._wide() or self.basis.num_limbs >= 2)
            else "scalar"
        )
        if _resolve_backend(backend, auto) == "vectorized":
            product = batch_negacyclic_polymul(
                self.towers, other.towers, self._tables()
            )
            return self._from_matrix(self.basis, product)
        towers = [
            negacyclic_polymul(ta, tb, table)
            for ta, tb, table in zip(self.towers, other.towers, self._tables())
        ]
        return RnsPolynomial(self.basis, towers)

    # -- NTT-domain dispatch ----------------------------------------------
    def ntt_all(self, direction: str = "forward") -> list[list[int]]:
        """Transform every tower in one batched pass.

        Returns per-limb NTT-domain rows (``direction="forward"``) or
        coefficient rows (``direction="inverse"``) without constructing a
        new polynomial; each limb uses its own twiddle table.
        """
        if direction == "forward":
            out = batch_ntt_forward(self.towers, self._tables())
        elif direction == "inverse":
            out = batch_ntt_inverse(self.towers, self._tables())
        else:
            raise ValueError("direction must be 'forward' or 'inverse'")
        return [[int(c) for c in row] for row in out.tolist()]

    def _check_compatible(self, other: "RnsPolynomial") -> None:
        if self.basis.moduli != other.basis.moduli:
            raise ValueError("operands use different RNS bases")
        if self.basis.ring_degree != other.basis.ring_degree:
            raise ValueError("operands use different ring degrees")
