"""RNS polynomials: one residue polynomial ("tower") per limb.

During HE multiplication each tower operates independently (paper Fig. 1);
:class:`RnsPolynomial` provides exactly that limb-parallel arithmetic,
including NTT-domain conversion per limb, and CRT reconstruction back to
wide-integer coefficients.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.ntt.polymul import negacyclic_polymul
from repro.ntt.twiddles import TwiddleTable
from repro.rns.basis import RnsBasis


@dataclass
class RnsPolynomial:
    """A ring element represented limb-wise over an :class:`RnsBasis`.

    Attributes:
        basis: the RNS basis.
        towers: one coefficient list per limb, each reduced mod its q_i.
    """

    basis: RnsBasis
    towers: list[list[int]]

    def __post_init__(self) -> None:
        if len(self.towers) != self.basis.num_limbs:
            raise ValueError("tower count must equal the number of limbs")
        n = self.basis.ring_degree
        for tower, q in zip(self.towers, self.basis.moduli):
            if len(tower) != n:
                raise ValueError("every tower must have ring_degree coefficients")
            if any(not 0 <= c < q for c in tower):
                raise ValueError("tower coefficients must be canonical residues")

    @staticmethod
    def from_coefficients(
        coefficients: Sequence[int], basis: RnsBasis
    ) -> "RnsPolynomial":
        """Decompose wide-integer coefficients into residue towers."""
        if len(coefficients) != basis.ring_degree:
            raise ValueError("coefficient count must equal the ring degree")
        towers = [[c % q for c in coefficients] for q in basis.moduli]
        return RnsPolynomial(basis, towers)

    def to_coefficients(self) -> list[int]:
        """CRT-reconstruct wide coefficients in [0, Q)."""
        return [
            self.basis.compose([t[i] for t in self.towers])
            for i in range(self.basis.ring_degree)
        ]

    def _tables(self) -> list[TwiddleTable]:
        n = self.basis.ring_degree
        return [TwiddleTable.for_ring(n, q) for q in self.basis.moduli]

    def add(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Limb-wise addition."""
        self._check_compatible(other)
        towers = [
            [(a + b) % q for a, b in zip(ta, tb)]
            for ta, tb, q in zip(self.towers, other.towers, self.basis.moduli)
        ]
        return RnsPolynomial(self.basis, towers)

    def sub(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Limb-wise subtraction."""
        self._check_compatible(other)
        towers = [
            [(a - b) % q for a, b in zip(ta, tb)]
            for ta, tb, q in zip(self.towers, other.towers, self.basis.moduli)
        ]
        return RnsPolynomial(self.basis, towers)

    def mul(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Limb-wise negacyclic multiplication (each tower via its own NTT)."""
        self._check_compatible(other)
        towers = [
            negacyclic_polymul(ta, tb, table)
            for ta, tb, table in zip(self.towers, other.towers, self._tables())
        ]
        return RnsPolynomial(self.basis, towers)

    def _check_compatible(self, other: "RnsPolynomial") -> None:
        if self.basis.moduli != other.basis.moduli:
            raise ValueError("operands use different RNS bases")
        if self.basis.ring_degree != other.basis.ring_degree:
            raise ValueError("operands use different ring degrees")
