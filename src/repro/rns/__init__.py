"""Residue Number System (RNS) substrate.

Implements the Fig. 1 flow of the paper: a wide ciphertext modulus Q is
split into pairwise-coprime NTT-friendly limbs q_i ("towers"); polynomial
arithmetic then proceeds limb-wise and independently, which is what lets a
128-bit datapath serve moduli of thousands of bits (e.g. a 1600-bit Q as 13
x 128-bit towers, per section II-B).
"""

from repro.rns.basis import RnsBasis
from repro.rns.tower import RnsPolynomial

__all__ = ["RnsBasis", "RnsPolynomial"]
