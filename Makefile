# Developer entry points.  The repo is pure Python (src layout); every
# target just sets PYTHONPATH and drives pytest.

PY := PYTHONPATH=src python

.PHONY: check check-kat check-slow bench-femu bench-he bench-kem bench-serve bench-spatial check-docs eval lint

check:  ## tier-1: the fast suite, including the FEMU differential tests
	$(PY) -m pytest -x -q

check-kat:  ## ML-KEM ACVP known-answer tier: vendored vectors vs engine + oracle
	$(PY) -m pytest tests/test_kem_kat.py -x -q

lint:  ## ruff over the whole repo (config in pyproject.toml)
	ruff check .

check-slow:  ## tier-1 plus the exhaustive differential/fuzz sweeps
	$(PY) -m pytest -x -q --slow

bench-femu:  ## FEMU backend benches; writes the speedup metric to JSON
	$(PY) -m pytest benchmarks/bench_femu_functional.py -q \
		--benchmark-json=femu_bench.json

bench-he:  ## batched HE-pipeline benches (functional multiply + cost model)
	$(PY) -m pytest benchmarks/bench_he_pipeline.py -q \
		--benchmark-json=he_bench.json

bench-kem:  ## ML-KEM handshake benches: batched vs serial throughput, latency
	$(PY) -m pytest benchmarks/bench_kem.py -q \
		--benchmark-json=kem_bench.json

bench-serve:  ## sharded serving benches: throughput vs shards, p50/p95 latency
	$(PY) -m pytest benchmarks/bench_serving.py -q \
		--benchmark-json=serving_bench.json

bench-spatial:  ## spatial-sharding bench: 16K NTT latency vs shard count
	$(PY) -m pytest benchmarks/bench_spatial.py -q \
		--benchmark-json=spatial_bench.json

check-docs:  ## run every ```python block in docs/*.md + README, and the demo
	$(PY) -m pytest tests/test_docs.py -q
	$(PY) examples/serving_demo.py --smoke

eval:  ## regenerate every paper table/figure (plus backend comparison)
	$(PY) -m repro.eval.run_all
