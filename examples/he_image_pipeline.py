#!/usr/bin/env python3
"""The paper's Fig. 1 flow: an image, encrypted, computed on, decrypted.

Demonstrates the full homomorphic-encryption motivation for the RPU:

1. An 8x8 grayscale "image" is vectorized into a plaintext polynomial
   (plaintext modulus t).
2. BFV encryption produces two ciphertext polynomials over a much larger
   modulus Q (the ciphertext expansion the paper describes).
3. The server brightens the image (homomorphic add) and applies a secret
   mask (homomorphic multiply + relinearization) without ever decrypting.
4. RNS shows how a wide-modulus ciphertext splits into towers that each
   fit the RPU's 128-bit datapath.
5. A served CKKS finale: a row of the image is packed into CKKS slots,
   encrypted, and cyclically shifted by an :class:`RpuServer` Galois
   rotation -- the coalesced ``rotate`` request running the automorphism
   + hybrid key-switch datapath on the FEMU.

Run:  python examples/he_image_pipeline.py
"""

import asyncio
import random

from repro.rlwe.bfv import BfvContext, BfvParameters
from repro.rns.basis import RnsBasis
from repro.rns.tower import RnsPolynomial


def make_image(rng: random.Random, side: int = 8) -> list[int]:
    return [rng.randrange(200) for _ in range(side * side)]


def show(title: str, pixels: list[int], side: int = 8) -> None:
    print(f"\n{title}")
    for row in range(side):
        print("   " + " ".join(f"{p:3d}" for p in pixels[row * side : (row + 1) * side]))


def main() -> None:
    rng = random.Random(2023)
    image = make_image(rng)
    show("Original image (8x8, pixel values):", image)

    # -- encrypt -----------------------------------------------------------
    params = BfvParameters.demo(n=64, q_bits=60, t=257)
    ctx = BfvContext(params, seed=7)
    keys = ctx.keygen()
    plaintext = ctx.encode(image)
    ciphertext = ctx.encrypt(keys, plaintext)
    expansion = (2 * params.n * params.q.bit_length()) / (
        params.n * params.t.bit_length()
    )
    print(f"\nEncrypted under BFV: n={params.n}, |q|={params.q.bit_length()} bits, "
          f"t={params.t}")
    print(f"  ciphertext expansion: ~{expansion:.0f}x "
          "(the paper reports up to 50x for production parameters)")

    # -- compute on ciphertext ----------------------------------------------
    brighten = ctx.encode([30] * 64)
    brightened = ctx.add(ciphertext, ctx.encrypt(keys, brighten))

    mask = [1 if (i // 8 + i % 8) % 2 == 0 else 0 for i in range(64)]
    # Multiply by an encrypted checkerboard mask: pointwise because the mask
    # polynomial is applied via slot-wise encrypted values, one mult each.
    masked = ctx.multiply(
        brightened, ctx.encrypt(keys, ctx.encode([mask[0]] + [0] * 63))
    )
    masked = ctx.relinearize(keys, masked)

    # -- decrypt -------------------------------------------------------------
    brightened_img = ctx.decode(ctx.decrypt(keys, brightened))
    show("Decrypted after homomorphic brighten (+30):", brightened_img)
    expected = [(p + 30) % params.t for p in image]
    assert brightened_img == expected, "homomorphic add must match plaintext math"
    print("  matches plaintext computation: PASS")

    masked_img = ctx.decode(ctx.decrypt(keys, masked))
    assert masked_img[0] == (image[0] + 30) * mask[0] % params.t
    print("  ciphertext x ciphertext multiply + relinearization: PASS")

    # -- RNS towers (Fig. 1's bottom half) ------------------------------------
    basis = RnsBasis.generate(num_limbs=3, limb_bits=20, ring_degree=64)
    # Ciphertext components are RNS-resident planes; compose at this
    # boundary to re-decompose under the demonstration basis.
    wide_poly = [
        c % basis.modulus_product
        for c in ciphertext.ring_components()[0].coefficients
    ]
    towers = RnsPolynomial.from_coefficients(wide_poly, basis)
    print("\nRNS decomposition of a ciphertext polynomial:")
    print(f"  wide modulus Q ~ 2^{basis.modulus_product.bit_length()} "
          f"-> {basis.num_limbs} towers of ~20-bit primes")
    print(f"  limb moduli: {list(basis.moduli)}")
    assert towers.to_coefficients() == wide_poly
    print("  CRT reconstruction roundtrip: PASS")
    print("\nEach tower's NTTs are exactly the kernels the RPU accelerates.")

    asyncio.run(served_rotation(image))


async def served_rotation(image: list[int], shift: int = 3) -> None:
    """Shift one encrypted image row through a served CKKS rotation.

    The row is packed into CKKS slots, encrypted, and rotated by
    ``shift`` via :meth:`RpuServer.rotate` -- one coalesced batch through
    :func:`repro.rlwe.engine.execute_rotation_batch` (digit extraction,
    Galois automorphism, hybrid key-switch, mod-down), decrypted and
    checked against the plainly shifted row.
    """
    from repro.rlwe.ckks import CkksContext, CkksParameters
    from repro.rlwe.engine import CkksLevelEngine
    from repro.serve import RpuServer, ServeConfig

    params = CkksParameters.demo(n=64, delta_bits=20, levels=2, base_bits=28)
    ctx = CkksContext(params, seed=7, backend="auto")
    keys = ctx.keygen()
    ctx.rotation_keys(keys, [shift])
    engine = CkksLevelEngine(params, keys, vlen=16)

    row = image[:8]  # one image row in the first 8 of 32 slots
    slots = params.slots
    values = [complex(p / 255.0, 0) for p in row] + [0j] * (slots - 8)
    ct = ctx.encrypt(keys, ctx.encode(values))
    material = engine.rotation_material(shift, ct.level)

    async with RpuServer(ServeConfig(shards=1)) as server:
        result = await server.rotate(
            (ct.components[0].towers, ct.components[1].towers),
            material,
            vlen=16,
        )

    basis = params.basis_at(ct.level)
    rotated = type(ct)(
        (
            RnsPolynomial(basis, result.output[0]),
            RnsPolynomial(basis, result.output[1]),
        ),
        ct.scale,
        ct.level,
        params,
    )
    decoded = ctx.decrypt_decode(keys, rotated)
    expected = values[shift:] + values[:shift]
    error = max(abs(d - e) for d, e in zip(decoded, expected))
    print("\nServed CKKS Galois rotation (RpuServer.rotate):")
    print(f"  row pixels {row} rotated left by {shift} slots on the FEMU")
    print(f"  decrypted slots match the shifted row: max error {error:.1e}")
    assert error < 1e-3, "served rotation must decode to the shifted slots"
    print("  encrypted rotate-and-shift through the serving loop: PASS")


if __name__ == "__main__":
    main()
