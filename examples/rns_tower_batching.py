#!/usr/bin/env python3
"""RNS tower batching: putting the Modulus Register File to work.

The paper adds an MRF so the modulus can change "at the instruction
granularity, enabling the potential to process different towers
simultaneously" (section IV-B5).  This example quantifies that potential:
one batched kernel computes two towers' NTTs under two different primes,
interleaved so each tower's dependence stalls are filled with the other
tower's work -- then shows where batching wins and where the shared
register file makes serial execution better.

Run:  python examples/rns_tower_batching.py
"""

import random

from repro.femu import FunctionalSimulator
from repro.ntt.reference import ntt_forward
from repro.ntt.twiddles import TwiddleTable
from repro.perf.config import RpuConfig
from repro.perf.engine import CycleSimulator
from repro.spiral import (
    generate_batched_ntt_program,
    generate_ntt_program,
    tower_regions,
)

CONFIG = RpuConfig(num_hples=128, vdm_banks=128)


def main() -> None:
    n = 2048
    print(f"Batched 2-tower {n}-point NTT (two distinct 128-bit primes)...")
    program = generate_batched_ntt_program(n, num_towers=2, q_bits=128)
    moduli = program.metadata["moduli"]
    print(f"  tower moduli: m1 <- {moduli[1]}")
    print(f"                m2 <- {moduli[2]}")
    print(f"  {program.summary()}")

    # Functional check: both towers transform correctly in one run.
    rng = random.Random(7)
    sim = FunctionalSimulator(program)
    inputs = {}
    for k, (in_region, _) in enumerate(tower_regions(program)):
        q = moduli[k + 1]
        inputs[k] = [rng.randrange(q) for _ in range(n)]
        sim.write_region(in_region, inputs[k])
    sim.run()
    for k, (_, out_region) in enumerate(tower_regions(program)):
        table = TwiddleTable.for_ring(n, moduli[k + 1])
        assert sim.read_region(out_region) == ntt_forward(inputs[k], table)
    print("  both towers match the reference NTT: PASS")

    # Performance: batched vs serial across ring sizes.
    print("\nBatched vs two serial kernels on the (128, 128) RPU:")
    print(f"{'n':>8} {'batched':>9} {'2x serial':>10} {'speedup':>8}  verdict")
    for size in (1024, 2048, 4096, 8192, 16384):
        batched = generate_batched_ntt_program(size, num_towers=2, q_bits=128)
        single = generate_ntt_program(size, q_bits=128)
        cb = CycleSimulator(CONFIG).run(batched).cycles
        cs = 2 * CycleSimulator(CONFIG).run(single).cycles
        verdict = "batching wins" if cs > cb else "serial wins"
        print(f"{size:>8} {cb:>9} {cs:>10} {cs / cb:>8.2f}  {verdict}")
    print(
        "\nSmall, dependence-bound rings gain most from cross-tower "
        "interleaving; past ~8K the towers' shared register file forces "
        "shallower rectangles and serial execution takes over."
    )


if __name__ == "__main__":
    main()
