#!/usr/bin/env python3
"""Polynomial multiplication run end-to-end on the simulated RPU.

The core RLWE primitive -- multiplication in Z_q[x]/(x^n + 1) -- executed
the way an accelerated HE library would do it: two forward NTT kernels and
one inverse kernel on the RPU (bit-accurate functional simulation), with
the pointwise product in between, validated against the schoolbook result.
Also prints the timing/energy a real (128, 128) RPU would spend.

Run:  python examples/polymul_on_rpu.py
"""

import random

from repro.core.rpu import Rpu
from repro.femu import FunctionalSimulator
from repro.hw.hbm import hbm_transfer_us
from repro.ntt.naive import naive_negacyclic_convolution
from repro.ntt.twiddles import TwiddleTable
from repro.perf.config import RpuConfig
from repro.spiral import generate_ntt_program

N = 2048
Q_BITS = 64  # keeps the schoolbook cross-check fast; the RPU default is 128


def run_kernel(program, values):
    sim = FunctionalSimulator(program)
    sim.write_region(program.input_region, values)
    sim.run()
    return sim.read_region(program.output_region)


def main() -> None:
    table = TwiddleTable.for_ring(N, q_bits=Q_BITS)
    q = table.q
    rng = random.Random(1)
    a = [rng.randrange(q) for _ in range(N)]
    b = [rng.randrange(q) for _ in range(N)]
    print(f"Multiplying two degree-{N} polynomials mod a "
          f"{q.bit_length()}-bit prime, entirely via RPU kernels...\n")

    fwd = generate_ntt_program(N, "forward", q=q, q_bits=Q_BITS)
    inv = generate_ntt_program(N, "inverse", q=q, q_bits=Q_BITS)

    a_hat = run_kernel(fwd, a)
    b_hat = run_kernel(fwd, b)
    product_hat = [x * y % q for x, y in zip(a_hat, b_hat)]
    product = run_kernel(inv, product_hat)

    expected = naive_negacyclic_convolution(a, b, q)
    assert product == expected
    print("RPU result == schoolbook negacyclic convolution: PASS")

    rpu = Rpu(RpuConfig(num_hples=128, vdm_banks=128))
    fwd_result = rpu.run(fwd)
    inv_result = rpu.run(inv)
    total_us = 2 * fwd_result.runtime_us + inv_result.runtime_us
    total_uj = 2 * fwd_result.energy.total + inv_result.energy.total
    print(f"\nOn the (128, 128) RPU this polynomial multiply costs:")
    print(f"  forward NTT:  {fwd_result.cycles} cycles x2  "
          f"({fwd_result.runtime_us:.3f} us each)")
    print(f"  inverse NTT:  {inv_result.cycles} cycles  "
          f"({inv_result.runtime_us:.3f} us)")
    print(f"  total:        {total_us:.3f} us, {total_uj:.2f} uJ "
          f"(+ pointwise multiplies)")
    print(f"  HBM streaming of operands: {3 * hbm_transfer_us(N):.3f} us "
          f"at 512 GB/s -- overlappable (Fig. 9)")


if __name__ == "__main__":
    main()
