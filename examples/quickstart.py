#!/usr/bin/env python3
"""Quickstart: generate an NTT kernel, run it on the RPU, read the models.

This is the 60-second tour of the public API:

1. ``generate_ntt_program`` -- the SPIRAL-style backend emits a B512 kernel.
2. ``Rpu(...).run(program, verify=True)`` -- cycle-accurate timing plus a
   functional execution checked against the reference NTT.
3. The result carries runtime, area, energy and power from the calibrated
   hardware models.

Run:  python examples/quickstart.py
"""

from repro import Rpu, RpuConfig
from repro.isa.assembler import format_instruction
from repro.spiral import generate_ntt_program


def main() -> None:
    n = 4096
    print(f"Generating the {n}-point, 128-bit forward NTT kernel...")
    program = generate_ntt_program(n)
    print(f"  {program.summary()}")
    print(f"  passes (rectangle blocking): {program.metadata['passes']}")
    print(f"  forwarded loads: {program.metadata.get('forwarded_loads', 0)}, "
          f"spills: {program.metadata['spill_slots']}")

    print("\nFirst instructions of the kernel:")
    for inst in program.instructions[:8]:
        print("    " + format_instruction(inst))

    print("\nRunning on the paper's best design, the (128, 128) RPU...")
    rpu = Rpu(RpuConfig(num_hples=128, vdm_banks=128))
    result = rpu.run(program, verify=True)
    print(result.summary())

    report = result.report
    print(f"\n  cycles:             {report.cycles}")
    print(f"  theoretical bound:  {report.theoretical_cycles(n):.0f} cycles "
          "(paper's n*log2(n)/HPLEs)")
    print(f"  ratio:              {report.cycles / report.theoretical_cycles(n):.2f}x")
    print(f"  pipe utilization:   {result.report.utilization()}")

    print("\nHeadline context: the 64K NTT on this design takes "
          "~6 us in 20.5 mm^2 -- see `python -m repro.eval.run_all`.")


if __name__ == "__main__":
    main()
