"""Serving-loop tour: async clients firing concurrent HE multiplies.

Starts an :class:`~repro.serve.RpuServer`, launches a swarm of
independent clients -- each awaiting a full L-tower homomorphic
ciphertext multiply, plus a side order of polynomial multiplies -- and
shows what the serving layer does for them: requests arriving within the
latency budget coalesce into batches, batches spread over the shard
pool, and every client gets back its own slice, bit-identical to the
software oracle (verified here per response).

Run it::

    PYTHONPATH=src python examples/serving_demo.py            # full demo
    PYTHONPATH=src python examples/serving_demo.py --smoke    # CI-sized

The summary table reports per-request latency (each client times its own
await), the coalesced batch widths, and the merged per-request
``ExecutionStats`` -- three kernel passes per HE multiply, however many
requests shared them.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import random
import time

from repro.ntt.polymul import negacyclic_polymul
from repro.ntt.twiddles import TwiddleTable
from repro.serve import RpuServer, ServeConfig, he_group_moduli


async def he_client(server, name, a_towers, b_towers, q_bits, vlen):
    """One user: fire an HE multiply, time the await, return the result."""
    t0 = time.perf_counter()
    result = await server.he_multiply(
        a_towers, b_towers, q_bits=q_bits, vlen=vlen
    )
    return name, time.perf_counter() - t0, result


async def main(args) -> int:
    n = 256 if args.smoke else 1024
    towers = 2 if args.smoke else 4
    q_bits = 64 if args.smoke else 128
    vlen = min(512, n // 2)
    clients = 4 if args.smoke else 8
    shards = args.shards or min(4, os.cpu_count() or 1)
    config = ServeConfig(
        shards=shards, max_batch=clients, batch_window_s=0.01
    )

    moduli = he_group_moduli(n, towers, q_bits=q_bits, vlen=vlen)
    rng = random.Random(args.seed)

    def ciphertext():
        return [[rng.randrange(m) for _ in range(n)] for m in moduli]

    payloads = [(ciphertext(), ciphertext()) for _ in range(clients)]

    print(
        f"serving {clients} concurrent HE multiplies: "
        f"{towers}x{n} towers, {q_bits}-bit moduli, "
        f"{shards} shard(s), window {config.batch_window_s * 1e3:.0f} ms"
    )
    wall0 = time.perf_counter()
    async with RpuServer(config) as server:
        rows = await asyncio.gather(
            *[
                he_client(server, f"user-{i}", a, b, q_bits, vlen)
                for i, (a, b) in enumerate(payloads)
            ]
        )
        # A second wave on the warm pool: polynomial multiplies.
        q30 = None
        poly = []
        if not args.smoke:
            table = TwiddleTable.for_ring(n, q_bits=30)
            q30 = table.q
            pairs = [
                (
                    [rng.randrange(q30) for _ in range(n)],
                    [rng.randrange(q30) for _ in range(n)],
                )
                for _ in range(clients)
            ]
            poly = await asyncio.gather(
                *[
                    server.polymul(a, b, q=q30, q_bits=30, vlen=vlen)
                    for a, b in pairs
                ]
            )
            for (a, b), result in zip(pairs, poly):
                assert result.output == negacyclic_polymul(a, b, table)
    wall = time.perf_counter() - wall0

    failures = 0
    print(f"\n{'client':<8} {'latency':>9} {'batched':>8} {'passes':>7} "
          f"{'shards':>6} {'dtype':>10} {'oracle':>7}")
    for (name, latency, result), (a, b) in zip(rows, payloads):
        oracle = [
            negacyclic_polymul(ta, tb, TwiddleTable.for_ring(n, q=m))
            for ta, tb, m in zip(a, b, moduli)
        ]
        ok = result.output == oracle
        failures += 0 if ok else 1
        print(
            f"{name:<8} {latency * 1e3:>7.1f}ms {result.batched_with:>8} "
            f"{result.stats.executed:>7} {result.shards:>6} "
            f"{result.dtype_path:>10} {'yes' if ok else 'NO':>7}"
        )
    latencies = sorted(latency for _n, latency, _r in rows)
    p50 = latencies[len(latencies) // 2]
    print(
        f"\n{clients} HE multiplies in {wall:.2f}s wall "
        f"({clients / wall:.1f} req/s), p50 latency {p50 * 1e3:.1f} ms"
    )
    if poly:
        widths = sorted({r.batched_with for r in poly})
        print(
            f"+ {len(poly)} polymuls on the warm pool, coalesced into "
            f"batches of {widths}, all bit-exact"
        )
    if failures:
        print(f"{failures} request(s) FAILED the oracle check")
        return 1
    print("every response bit-identical to the software oracle")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: small ring, few clients, fast",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="worker processes (default: min(4, cpu_count))",
    )
    parser.add_argument("--seed", type=int, default=0)
    raise SystemExit(asyncio.run(main(parser.parse_args())))
