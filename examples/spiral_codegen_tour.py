#!/usr/bin/env python3
"""A tour of the SPIRAL-style backend: what each optimization buys.

Generates the same 8K NTT four ways -- naive, +scheduling, +forwarding,
full pipeline -- and shows assembly excerpts plus simulated cycles on the
(128, 128) RPU, reproducing the mechanism behind the paper's Fig. 6.

Run:  python examples/spiral_codegen_tour.py
"""

from repro.isa.assembler import format_instruction
from repro.isa.opcodes import InstructionClass
from repro.perf.config import RpuConfig
from repro.perf.engine import CycleSimulator
from repro.spiral import generate_ntt_program

N = 8192
CONFIG = RpuConfig(num_hples=128, vdm_banks=128)


def describe(title: str, program) -> int:
    report = CycleSimulator(CONFIG).run(program)
    counts = program.class_counts()
    stalls = report.stall_cycles
    print(f"\n--- {title}")
    print(f"  instructions: CI={counts[InstructionClass.CI]} "
          f"SI={counts[InstructionClass.SI]} LSI={counts[InstructionClass.LSI]}")
    print(f"  cycles: {report.cycles}  ({report.runtime_us:.2f} us)")
    print(f"  busyboard stalls: RAW={stalls['busyboard_raw']} "
          f"WAW={stalls['busyboard_waw']} queue={stalls['queue_full']}")
    return report.cycles


def main() -> None:
    print(f"{N}-point, 128-bit forward NTT on the (128, 128) RPU")

    unopt = generate_ntt_program(N, optimize=False)
    naive_cycles = describe(
        "Unoptimized (per-pair emission, immediate register reuse)", unopt
    )
    print("  head of the kernel (note shuffle right after its butterfly):")
    for inst in unopt.instructions[16:22]:
        print("      " + format_instruction(inst))

    opt = generate_ntt_program(N, optimize=True)
    opt_cycles = describe(
        "Optimized (list-scheduled, store-to-load forwarded, round-robin "
        "registers)", opt
    )
    print("  head of the kernel (independent work interleaved):")
    for inst in opt.instructions[16:22]:
        print("      " + format_instruction(inst))
    print("  store-to-load forwarded loads: "
          f"{opt.metadata.get('forwarded_loads', 0)}")

    print(f"\nSpeedup from hardware-aware code generation: "
          f"{naive_cycles / opt_cycles:.2f}x")
    print("The paper reports 1.8x on average across HPLE counts (Fig. 6).")

    print("\nRectangle (register blocking) ablation on the same ring:")
    for depth in (2, 3, 4):
        program = generate_ntt_program(N, rect_depth=depth)
        report = CycleSimulator(CONFIG).run(program)
        passes = program.metadata["passes"]
        print(f"  rect_depth={depth}: passes={passes} "
              f"LSI={program.class_counts()[InstructionClass.LSI]} "
              f"cycles={report.cycles}")


if __name__ == "__main__":
    main()
