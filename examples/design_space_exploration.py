#!/usr/bin/env python3
"""Design space exploration: how the paper picked the (128, 128) RPU.

Sweeps HPLE count and VDM banking for a 16K NTT (faster than the paper's
64K sweep but the same trends), printing the Fig. 3-style area/latency
table, the Fig. 4 performance-per-area metric, and the chosen design.

Run:  python examples/design_space_exploration.py
"""

from repro.hw.area import rpu_area_breakdown
from repro.perf.config import RpuConfig
from repro.perf.engine import CycleSimulator
from repro.spiral import generate_ntt_program

HPLES = (16, 32, 64, 128, 256)
BANKS = (32, 64, 128, 256)
N = 16384


def main() -> None:
    print(f"Sweeping {len(HPLES)}x{len(BANKS)} RPU configurations on the "
          f"{N}-point NTT...\n")
    program = generate_ntt_program(N)
    results = {}
    for h in HPLES:
        for b in BANKS:
            config = RpuConfig(num_hples=h, vdm_banks=b)
            report = CycleSimulator(config).run(program)
            area = rpu_area_breakdown(h, b).total
            pa = 1.0 / (report.runtime_us * 1e-6 * area)
            results[(h, b)] = (report.runtime_us, area, pa)

    print(f"{'design':>12} {'runtime_us':>11} {'area_mm2':>9} {'P/A':>8}")
    for (h, b), (rt, area, pa) in sorted(results.items()):
        print(f"({h:>4},{b:>4}) {rt:>11.2f} {area:>9.1f} {pa:>8.0f}")

    best = max(results, key=lambda k: results[k][2])
    print(f"\nBest performance-per-area: ({best[0]} HPLEs, {best[1]} banks)")
    print("The paper reaches the same conclusion on the 64K NTT: "
          "(128, 128) maximizes P/A.")

    h, b = best
    breakdown = rpu_area_breakdown(h, b)
    print(f"\nArea breakdown of the chosen design ({breakdown.total:.1f} mm^2):")
    for name, mm2 in breakdown.as_dict().items():
        print(f"  {name:<18} {mm2:>7.3f} mm^2  ({100 * mm2 / breakdown.total:>5.1f}%)")


if __name__ == "__main__":
    main()
