"""Post-quantum key exchange: batched ML-KEM handshakes on the RPU.

Runs spec-faithful FIPS 203 ML-KEM (n = 256, q = 3329) end to end
through the serving stack: a swarm of clients each establishes a shared
secret against its own key -- keygen, encaps, decaps -- with every
transform (the incomplete 7-layer negacyclic NTT and the degree-2
basemuls) executing as compiled kernel passes on the functional
emulator.  Requests arriving within the latency budget coalesce, so 64
concurrent handshakes share the fixed per-pass dispatch that a
one-at-a-time client pays 64 times over.

Every shared secret is checked three ways: encapsulator vs decapsulator,
both vs the pure-Python FIPS 203 oracle, and one deliberately corrupted
ciphertext must trigger implicit rejection (a well-distributed *wrong*
key, not an error -- the FO transform's whole point).

Run it::

    PYTHONPATH=src python examples/pqc_key_exchange.py            # full demo
    PYTHONPATH=src python examples/pqc_key_exchange.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import asyncio
import os
import time

from repro.rlwe.kyber import MlKem, get_params
from repro.serve import RpuServer, ServeConfig


async def handshake(server, name, param_set, d, z, m):
    """One client: keygen, encapsulate, decapsulate, all served."""
    t0 = time.perf_counter()
    key = await server.kem_keygen(d=d, z=z, param_set=param_set)
    ek, dk = key.output
    enc = await server.kem_encaps(ek, m=m, param_set=param_set)
    shared_enc, ct = enc.output
    dec = await server.kem_decaps(dk, ct, param_set=param_set)
    latency = time.perf_counter() - t0
    return name, latency, ek, dk, ct, shared_enc, dec


async def main(args) -> int:
    param_set = "ML-KEM-512" if args.smoke else "ML-KEM-768"
    clients = 4 if args.smoke else 16
    params = get_params(param_set)
    config = ServeConfig(
        shards=1, max_batch=clients, batch_window_s=0.02
    )
    print(
        f"{param_set}: k={params.k}, ek {params.ek_bytes} B, "
        f"ct {params.ct_bytes} B; serving {clients} concurrent handshakes"
    )

    seeds = [
        (os.urandom(32), os.urandom(32), os.urandom(32))
        for _ in range(clients)
    ]
    wall0 = time.perf_counter()
    async with RpuServer(config) as server:
        rows = await asyncio.gather(
            *[
                handshake(server, f"client-{i}", param_set, d, z, m)
                for i, (d, z, m) in enumerate(seeds)
            ]
        )
    wall = time.perf_counter() - wall0

    oracle = MlKem(param_set)
    failures = 0
    print(f"\n{'client':<10} {'latency':>9} {'batched':>8} {'dtype':>7} "
          f"{'agree':>6} {'oracle':>7}")
    for name, latency, ek, dk, ct, shared_enc, dec in rows:
        agree = dec.output == shared_enc
        vs_oracle = oracle.decaps(dk, ct) == shared_enc
        failures += 0 if (agree and vs_oracle) else 1
        print(
            f"{name:<10} {latency * 1e3:>7.1f}ms {dec.batched_with:>8} "
            f"{dec.dtype_path:>7} {'yes' if agree else 'NO':>6} "
            f"{'yes' if vs_oracle else 'NO':>7}"
        )
    print(
        f"\n{clients} handshakes in {wall:.2f}s wall "
        f"({clients / wall:.1f} hs/s through the coalescing loop)"
    )

    # Implicit rejection: a tampered ciphertext decapsulates to a
    # uniformly-wrong secret derived from J(z || c), never an error.
    _name, _lat, ek, dk, ct, shared_enc, _dec = rows[0]
    tampered = bytes([ct[0] ^ 0x80]) + ct[1:]
    rejected = oracle.decaps(dk, tampered)
    assert rejected != shared_enc, "tampering must change the secret"
    assert len(rejected) == 32
    print("tampered ciphertext -> implicit rejection secret: PASS")

    if failures:
        print(f"{failures} handshake(s) FAILED")
        return 1
    print("every handshake agrees and matches the FIPS 203 oracle")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: ML-KEM-512, few clients, fast",
    )
    raise SystemExit(asyncio.run(main(parser.parse_args())))
