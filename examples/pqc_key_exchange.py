#!/usr/bin/env python3
"""Post-quantum key exchange: the RPU's second motivating workload.

Runs a Kyber-style module-LWE KEM (rank 2, n = 256, q = 7681 -- the classic
fully-NTT-friendly parameter set) end to end: key generation,
encapsulation, decapsulation, and a tamper check.  Every polynomial
multiplication inside runs through the same negacyclic NTT machinery the
RPU accelerates.

Run:  python examples/pqc_key_exchange.py
"""

from repro.rlwe.kyber import DU, DV, ETA, N, Q, KyberContext


def main() -> None:
    print(f"Kyber-style KEM: n={N}, q={Q}, eta={ETA}, module rank k=2")
    print(f"  compression: d_u={DU}, d_v={DV} bits")
    print(f"  q - 1 = {Q - 1} = {(Q - 1) // (2 * N)} * 2n -> "
          "complete negacyclic NTT available\n")

    alice = KyberContext(k=2, seed=42)
    print("Alice generates a keypair...")
    pk, sk = alice.keygen()
    print(f"  public key: seed for matrix A + {len(pk.t)} ring elements")

    bob = KyberContext(k=2, seed=99)
    print("Bob encapsulates against Alice's public key...")
    ct, bob_secret = bob.encapsulate(pk)
    ct_bits = sum(len(u) * DU for u in ct.u) + len(ct.v) * DV
    print(f"  ciphertext: {ct_bits // 8} bytes (compressed)")
    print(f"  Bob's shared secret:   {bob_secret.hex()[:32]}...")

    alice_secret = alice.decapsulate(sk, ct)
    print(f"  Alice's shared secret: {alice_secret.hex()[:32]}...")
    assert alice_secret == bob_secret, "shared secrets must match"
    print("  key agreement: PASS")

    print("\nTamper check: flipping message-bearing bits must break agreement")
    print("  (small low-bit noise is absorbed by the scheme's error margin;")
    print("  flipping the top bit of a v coefficient shifts it by ~q/2).")
    tampered_v = list(ct.v)
    tampered_v[0] ^= 1 << (DV - 1)
    tampered = type(ct)(u=ct.u, v=tuple(tampered_v))
    assert alice.decapsulate(sk, tampered) != bob_secret
    print("  tampered ciphertext yields a different secret: PASS")

    low_noise_v = list(ct.v)
    low_noise_v[0] ^= 1
    noisy = type(ct)(u=ct.u, v=tuple(low_noise_v))
    assert alice.decapsulate(sk, noisy) == bob_secret
    print("  one low bit of channel noise is corrected: PASS")

    print("\nRepeated exchanges (fresh randomness each time):")
    for i in range(3):
        ct_i, ss_i = bob.encapsulate(pk)
        ok = alice.decapsulate(sk, ct_i) == ss_i
        print(f"  exchange {i + 1}: {'PASS' if ok else 'FAIL'}")


if __name__ == "__main__":
    main()
